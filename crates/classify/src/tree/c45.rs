//! The C4.5 decision-tree learner, specialised to binary features.
//!
//! * Split criterion: **gain ratio** — information gain normalised by the
//!   split information, Quinlan's correction of ID3's bias;
//! * binary features make every split two-way (present / absent), so
//!   multiway splits and threshold search are unnecessary (the framework
//!   discretizes numeric attributes before itemisation);
//! * pruning: C4.5's **pessimistic error** estimate — the Wilson-style
//!   upper confidence bound of the leaf error at confidence factor `CF`
//!   (default 0.25, Weka's J48 default) drives bottom-up subtree
//!   replacement.

use crate::eval::majority_class;
use crate::Classifier;
use dfp_data::features::SparseBinaryMatrix;
use dfp_data::schema::ClassId;

/// C4.5 hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C45Params {
    /// Minimum instances per leaf (Weka default 2).
    pub min_leaf: usize,
    /// Pruning confidence factor; smaller prunes harder. `None` disables
    /// pruning.
    pub cf: Option<f64>,
    /// Maximum tree depth (`None` = unbounded).
    pub max_depth: Option<usize>,
}

impl Default for C45Params {
    fn default() -> Self {
        C45Params {
            min_leaf: 2,
            cf: Some(0.25),
            max_depth: None,
        }
    }
}

/// A node of the trained tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: ClassId,
        /// Class distribution at the leaf (kept for pruning / inspection).
        counts: Vec<u32>,
    },
    Split {
        feature: u32,
        present: Box<Node>,
        absent: Box<Node>,
        /// Class distribution at the split (used when pruning replaces it).
        counts: Vec<u32>,
    },
}

/// A trained C4.5 tree.
#[derive(Debug, Clone)]
pub struct C45 {
    root: Node,
    n_classes: usize,
}

/// One node of a flattened tree (pre-order array encoding of the trained
/// structure, for model serialization). Child references are indices into
/// the flat node vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatNode {
    /// A leaf predicting `class`, with its training class distribution.
    Leaf {
        /// Predicted class.
        class: ClassId,
        /// Class distribution at the leaf.
        counts: Vec<u32>,
    },
    /// An internal two-way split on a binary feature.
    Split {
        /// Feature id tested by the split.
        feature: u32,
        /// Index of the child taken when the feature is present.
        present: usize,
        /// Index of the child taken when the feature is absent.
        absent: usize,
        /// Class distribution at the split.
        counts: Vec<u32>,
    },
}

impl C45 {
    /// Trains a tree on a labelled sparse binary matrix.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(data: &SparseBinaryMatrix, params: &C45Params) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty matrix");
        let rows: Vec<usize> = (0..data.len()).collect();
        let mut root = build(data, &rows, params, 0);
        if let Some(cf) = params.cf {
            let z = cf_to_z(cf);
            prune(&mut root, z);
        }
        C45 {
            root,
            n_classes: data.n_classes,
        }
    }

    /// Number of leaves (model-size metric).
    pub fn n_leaves(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split {
                    present, absent, ..
                } => walk(present) + walk(absent),
            }
        }
        walk(&self.root)
    }

    /// Tree depth (root-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split {
                    present, absent, ..
                } => 1 + walk(present).max(walk(absent)),
            }
        }
        walk(&self.root)
    }

    /// Number of classes the tree was trained with.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Flattens the tree into a pre-order node array (root at index 0) —
    /// the complete trained state, for model serialization.
    pub fn flatten(&self) -> Vec<FlatNode> {
        fn walk(node: &Node, out: &mut Vec<FlatNode>) -> usize {
            match node {
                Node::Leaf { class, counts } => {
                    out.push(FlatNode::Leaf {
                        class: *class,
                        counts: counts.clone(),
                    });
                    out.len() - 1
                }
                Node::Split {
                    feature,
                    present,
                    absent,
                    counts,
                } => {
                    let at = out.len();
                    // Placeholder; child indices are patched after recursion.
                    out.push(FlatNode::Split {
                        feature: *feature,
                        present: 0,
                        absent: 0,
                        counts: counts.clone(),
                    });
                    let p = walk(present, out);
                    let a = walk(absent, out);
                    if let FlatNode::Split {
                        present, absent, ..
                    } = &mut out[at]
                    {
                        *present = p;
                        *absent = a;
                    }
                    at
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Rebuilds a tree from a flattened node array (inverse of
    /// [`Self::flatten`]). Returns an error message when the encoding is
    /// malformed: out-of-range child indices, cycles (a child index must be
    /// greater than its parent's), or an empty array.
    pub fn from_flat(nodes: &[FlatNode], n_classes: usize) -> Result<Self, String> {
        fn build(nodes: &[FlatNode], at: usize) -> Result<Node, String> {
            match &nodes[at] {
                FlatNode::Leaf { class, counts } => Ok(Node::Leaf {
                    class: *class,
                    counts: counts.clone(),
                }),
                FlatNode::Split {
                    feature,
                    present,
                    absent,
                    counts,
                } => {
                    for &child in [present, absent] {
                        if child >= nodes.len() {
                            return Err(format!("node {at}: child index {child} out of range"));
                        }
                        if child <= at {
                            return Err(format!(
                                "node {at}: child index {child} not strictly increasing"
                            ));
                        }
                    }
                    Ok(Node::Split {
                        feature: *feature,
                        present: Box::new(build(nodes, *present)?),
                        absent: Box::new(build(nodes, *absent)?),
                        counts: counts.clone(),
                    })
                }
            }
        }
        if nodes.is_empty() {
            return Err("empty node array".into());
        }
        Ok(C45 {
            root: build(nodes, 0)?,
            n_classes,
        })
    }
}

impl Classifier for C45 {
    fn predict(&self, row: &[u32]) -> ClassId {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    feature,
                    present,
                    absent,
                    ..
                } => {
                    node = if row.binary_search(feature).is_ok() {
                        present
                    } else {
                        absent
                    };
                }
            }
        }
    }
}

fn class_counts(data: &SparseBinaryMatrix, rows: &[usize]) -> Vec<u32> {
    let mut counts = vec![0u32; data.n_classes];
    for &r in rows {
        counts[data.labels[r].index()] += 1;
    }
    counts
}

fn entropy(counts: &[u32]) -> f64 {
    let n: u32 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

fn leaf(counts: Vec<u32>) -> Node {
    Node::Leaf {
        class: majority_class(&counts),
        counts,
    }
}

fn build(data: &SparseBinaryMatrix, rows: &[usize], params: &C45Params, depth: usize) -> Node {
    let counts = class_counts(data, rows);
    let n = rows.len();
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure || n < 2 * params.min_leaf || params.max_depth.is_some_and(|d| depth >= d) {
        return leaf(counts);
    }

    // Per-feature class counts among rows where the feature is present.
    let mut present_counts = vec![0u32; data.n_features * data.n_classes];
    let mut present_total = vec![0u32; data.n_features];
    for &r in rows {
        let c = data.labels[r].index();
        for &f in &data.rows[r] {
            present_counts[f as usize * data.n_classes + c] += 1;
            present_total[f as usize] += 1;
        }
    }

    let h = entropy(&counts);
    let n_f = n as f64;
    let mut best: Option<(u32, f64)> = None; // (feature, gain ratio)
    for f in 0..data.n_features {
        let np = present_total[f] as usize;
        let na = n - np;
        if np < params.min_leaf || na < params.min_leaf {
            continue;
        }
        let pc = &present_counts[f * data.n_classes..(f + 1) * data.n_classes];
        let ac: Vec<u32> = counts.iter().zip(pc).map(|(&t, &p)| t - p).collect();
        let gain = h - (np as f64 / n_f) * entropy(pc) - (na as f64 / n_f) * entropy(&ac);
        if gain <= 1e-10 {
            continue;
        }
        let frac = np as f64 / n_f;
        let split_info = -frac * frac.log2() - (1.0 - frac) * (1.0 - frac).log2();
        if split_info <= 1e-10 {
            continue;
        }
        let ratio = gain / split_info;
        if best.is_none_or(|(_, b)| ratio > b + 1e-12) {
            best = Some((f as u32, ratio));
        }
    }

    let Some((feature, _)) = best else {
        return leaf(counts);
    };
    let (p_rows, a_rows): (Vec<usize>, Vec<usize>) = rows
        .iter()
        .partition(|&&r| data.rows[r].binary_search(&feature).is_ok());
    Node::Split {
        feature,
        present: Box::new(build(data, &p_rows, params, depth + 1)),
        absent: Box::new(build(data, &a_rows, params, depth + 1)),
        counts,
    }
}

/// Inverse standard-normal quantile of `1 − cf` (Acklam's rational
/// approximation, |relative error| < 1.15e-9 — ample for pruning).
fn cf_to_z(cf: f64) -> f64 {
    let p = 1.0 - cf.clamp(1e-9, 0.5);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_HIGH: f64 = 1.0 - 0.02425;
    if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Pessimistic error estimate: `N · U_z(e/N, N)` where `U_z` is the upper
/// confidence bound of a binomial proportion at `z` standard deviations.
fn pessimistic_errors(counts: &[u32], z: f64) -> f64 {
    let n: u32 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n_f = n as f64;
    let errors = n - counts.iter().max().copied().unwrap_or(0);
    let f = errors as f64 / n_f;
    let z2 = z * z;
    let ub = (f + z2 / (2.0 * n_f) + z * (f * (1.0 - f) / n_f + z2 / (4.0 * n_f * n_f)).sqrt())
        / (1.0 + z2 / n_f);
    n_f * ub
}

/// Bottom-up subtree replacement: collapse a split whose pessimistic error
/// as a leaf does not exceed the sum of its children's estimates.
fn prune(node: &mut Node, z: f64) -> f64 {
    match node {
        Node::Leaf { counts, .. } => pessimistic_errors(counts, z),
        Node::Split {
            present,
            absent,
            counts,
            ..
        } => {
            let child_err = prune(present, z) + prune(absent, z);
            let as_leaf = pessimistic_errors(counts, z);
            if as_leaf <= child_err + 0.1 {
                let counts = counts.clone();
                *node = leaf(counts);
                as_leaf
            } else {
                child_err
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(
        rows: Vec<Vec<u32>>,
        labels: Vec<u32>,
        n_features: usize,
        n_classes: usize,
    ) -> SparseBinaryMatrix {
        SparseBinaryMatrix::new(
            n_features,
            rows,
            labels.into_iter().map(ClassId).collect(),
            n_classes,
        )
    }

    #[test]
    fn pure_data_single_leaf() {
        let m = matrix(vec![vec![0], vec![1], vec![0, 1]], vec![0, 0, 0], 2, 1);
        let t = C45::fit(&m, &C45Params::default());
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.accuracy(&m), 1.0);
    }

    #[test]
    fn learns_single_feature_rule() {
        let m = matrix(
            vec![vec![0], vec![0], vec![0], vec![], vec![], vec![]],
            vec![0, 0, 0, 1, 1, 1],
            1,
            2,
        );
        let t = C45::fit(&m, &C45Params::default());
        assert_eq!(t.accuracy(&m), 1.0);
        assert_eq!(t.predict(&[0]), ClassId(0));
        assert_eq!(t.predict(&[]), ClassId(1));
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn xor_defeats_greedy_tree_but_pattern_feature_fixes_it() {
        // Pure XOR gives every single feature exactly zero gain at the root,
        // so greedy C4.5 cannot split — exactly the paper's motivation for
        // combined features. Adding the pattern feature {0,1} (feature 2)
        // makes the problem learnable.
        let base = vec![(vec![], 0u32), (vec![0, 1], 0), (vec![0], 1), (vec![1], 1)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..3 {
            for (r, l) in &base {
                rows.push(r.clone());
                labels.push(*l);
            }
        }
        let without = matrix(rows.clone(), labels.clone(), 2, 2);
        let t = C45::fit(
            &without,
            &C45Params {
                cf: None,
                ..C45Params::default()
            },
        );
        assert!(
            t.accuracy(&without) <= 0.5 + 1e-9,
            "XOR should stump a greedy tree"
        );

        // Extended space: feature 2 fires iff both 0 and 1 are present.
        let rows_ext: Vec<Vec<u32>> = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                if r == vec![0, 1] {
                    r.push(2);
                }
                r
            })
            .collect();
        let with = matrix(rows_ext, labels, 3, 2);
        let t = C45::fit(
            &with,
            &C45Params {
                cf: None,
                ..C45Params::default()
            },
        );
        assert_eq!(t.accuracy(&with), 1.0);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn gain_ratio_prefers_informative_feature() {
        // Feature 0 perfectly predicts; feature 1 is noise.
        let m = matrix(
            vec![vec![0, 1], vec![0], vec![0, 1], vec![1], vec![], vec![]],
            vec![0, 0, 0, 1, 1, 1],
            2,
            2,
        );
        let t = C45::fit(&m, &C45Params::default());
        assert_eq!(t.accuracy(&m), 1.0);
        // The root must split on feature 0, giving a depth-1 tree.
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // Labels are (almost) independent of the features; the unpruned tree
        // may split, the pruned one should be (near-)trivial.
        let rows: Vec<Vec<u32>> = (0..40u32).map(|i| vec![i % 3]).collect();
        let labels: Vec<u32> = (0..40u32).map(|i| ((i * 7 + 1) % 5 == 0) as u32).collect();
        let m = matrix(rows, labels, 3, 2);
        let unpruned = C45::fit(
            &m,
            &C45Params {
                cf: None,
                ..C45Params::default()
            },
        );
        let pruned = C45::fit(&m, &C45Params::default());
        assert!(pruned.n_leaves() <= unpruned.n_leaves());
    }

    #[test]
    fn min_leaf_respected() {
        let m = matrix(
            vec![vec![0], vec![], vec![], vec![], vec![], vec![]],
            vec![0, 1, 1, 1, 1, 1],
            1,
            2,
        );
        // A split would isolate a single row; min_leaf = 2 forbids it.
        let t = C45::fit(&m, &C45Params::default());
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.predict(&[0]), ClassId(1));
    }

    #[test]
    fn cf_to_z_sane() {
        // z(0.25) ≈ 0.6745, z(0.05) ≈ 1.6449
        assert!((cf_to_z(0.25) - 0.6744897).abs() < 1e-4);
        assert!((cf_to_z(0.05) - 1.6448536).abs() < 1e-4);
        assert!((cf_to_z(0.5)).abs() < 1e-9);
    }

    #[test]
    fn pessimistic_error_grows_with_uncertainty() {
        let z = cf_to_z(0.25);
        // Same error rate, smaller sample → bigger pessimistic rate.
        let small = pessimistic_errors(&[3, 1], z) / 4.0;
        let large = pessimistic_errors(&[30, 10], z) / 40.0;
        assert!(small > large);
        // A pure node still gets a non-zero pessimistic estimate.
        assert!(pessimistic_errors(&[5, 0], z) > 0.0);
    }

    #[test]
    fn multiclass() {
        let m = matrix(
            vec![
                vec![0],
                vec![0],
                vec![1],
                vec![1],
                vec![2],
                vec![2],
                vec![0],
                vec![0],
                vec![1],
                vec![1],
                vec![2],
                vec![2],
            ],
            vec![0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2],
            3,
            3,
        );
        let t = C45::fit(&m, &C45Params::default());
        assert_eq!(t.accuracy(&m), 1.0);
        assert_eq!(t.n_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_matrix_panics() {
        let m = matrix(vec![], vec![], 1, 1);
        C45::fit(&m, &C45Params::default());
    }
}
