//! Cross validation and grid model selection over sparse binary matrices.
//!
//! The paper's protocol (§4): each dataset is split into ten stratified
//! folds; within each training set another 10-fold CV picks the best model
//! configuration, which is then evaluated on the held-out fold.
//! [`cross_validate`] is the inner loop; [`select_best`] is the grid search.

use crate::eval::accuracy;
use crate::Classifier;
use dfp_data::features::SparseBinaryMatrix;
use dfp_data::split::stratified_k_fold;

/// Per-fold accuracies plus their mean.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Accuracy on each fold's held-out part.
    pub fold_accuracies: Vec<f64>,
}

impl CvResult {
    /// Mean accuracy across folds.
    pub fn mean(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Sample standard deviation across folds (0 for < 2 folds).
    pub fn std_dev(&self) -> f64 {
        let k = self.fold_accuracies.len();
        if k < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .fold_accuracies
            .iter()
            .map(|a| (a - m) * (a - m))
            .sum::<f64>()
            / (k - 1) as f64;
        var.sqrt()
    }
}

/// Stratified k-fold cross validation of a training procedure.
///
/// `fit` is called once per fold on the training part; the returned model is
/// scored on the held-out part. Folds are independent (the split is fixed by
/// `seed` up front), so each runs on its own worker; accuracies land in fold
/// order regardless of thread count.
pub fn cross_validate<M, F>(data: &SparseBinaryMatrix, k: usize, seed: u64, fit: F) -> CvResult
where
    M: Classifier,
    F: Fn(&SparseBinaryMatrix) -> M + Sync,
{
    let folds = stratified_k_fold(&data.labels, k, seed);
    let fold_accuracies = dfp_par::par_map(&folds, |fold| {
        // Inner-CV folds return plain accuracies (no Result channel), so the
        // failpoint here can only panic or sleep — enough for chaos testing
        // the panic path through the parallel runtime.
        dfp_fault::faultpoint!("cv.inner_fold");
        let _sp = dfp_obs::span("cv.inner_fold");
        let train = data.subset(&fold.train);
        let test = data.subset(&fold.test);
        let model = fit(&train);
        accuracy(&model.predict_all(&test), &test.labels)
    });
    CvResult { fold_accuracies }
}

/// Grid model selection: cross-validates `fit(config, ·)` for every config
/// and returns `(best_index, best_cv_mean)`. Ties go to the earlier config,
/// so config order encodes preference (put the simplest first).
///
/// # Panics
/// Panics if `configs` is empty.
pub fn select_best<T, M, F>(
    data: &SparseBinaryMatrix,
    k: usize,
    seed: u64,
    configs: &[T],
    fit: F,
) -> (usize, f64)
where
    T: Sync,
    M: Classifier,
    F: Fn(&T, &SparseBinaryMatrix) -> M + Sync,
{
    assert!(!configs.is_empty(), "need at least one configuration");
    let mut best = 0usize;
    let mut best_acc = f64::NEG_INFINITY;
    for (i, cfg) in configs.iter().enumerate() {
        let acc = cross_validate(data, k, seed, |train| fit(cfg, train)).mean();
        if acc > best_acc {
            best_acc = acc;
            best = i;
        }
    }
    (best, best_acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::{LinearSvm, LinearSvmParams};
    use dfp_data::schema::ClassId;

    fn separable(n_per_class: usize) -> SparseBinaryMatrix {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            rows.push(if i % 3 == 0 { vec![0] } else { vec![0, 2] });
            labels.push(ClassId(0));
            rows.push(if i % 3 == 1 { vec![1] } else { vec![1, 2] });
            labels.push(ClassId(1));
        }
        SparseBinaryMatrix::new(3, rows, labels, 2)
    }

    #[test]
    fn cv_on_separable_data_is_perfect() {
        let m = separable(20);
        let res = cross_validate(&m, 5, 7, |train| {
            LinearSvm::fit(train, &LinearSvmParams::default())
        });
        assert_eq!(res.fold_accuracies.len(), 5);
        assert!((res.mean() - 1.0).abs() < 1e-12);
        assert_eq!(res.std_dev(), 0.0);
    }

    #[test]
    fn cv_deterministic_per_seed() {
        let m = separable(10);
        let a = cross_validate(&m, 5, 3, |t| LinearSvm::fit(t, &LinearSvmParams::default()));
        let b = cross_validate(&m, 5, 3, |t| LinearSvm::fit(t, &LinearSvmParams::default()));
        assert_eq!(a.fold_accuracies, b.fold_accuracies);
    }

    #[test]
    fn select_best_prefers_working_config() {
        use crate::tree::{C45Params, C45};
        let m = separable(15);
        // depth 0 forces a majority stump (≈50%); unbounded depth learns the
        // marker features.
        let configs = [Some(0usize), None];
        let (best, acc) = select_best(&m, 5, 1, &configs, |&max_depth, train| {
            C45::fit(
                train,
                &C45Params {
                    max_depth,
                    ..C45Params::default()
                },
            )
        });
        assert_eq!(best, 1);
        assert!(acc > 0.9);
    }

    #[test]
    fn select_best_ties_go_to_first() {
        let m = separable(15);
        // Both Cs solve the problem perfectly → tie → first config wins.
        let configs = [1.0f64, 10.0];
        let (best, _) = select_best(&m, 5, 1, &configs, |&c, train| {
            LinearSvm::fit(train, &LinearSvmParams::with_c(c))
        });
        assert_eq!(best, 0);
    }

    #[test]
    fn cv_result_stats() {
        let r = CvResult {
            fold_accuracies: vec![0.8, 1.0, 0.9],
        };
        assert!((r.mean() - 0.9).abs() < 1e-12);
        assert!((r.std_dev() - 0.1).abs() < 1e-12);
        assert_eq!(
            CvResult {
                fold_accuracies: vec![]
            }
            .mean(),
            0.0
        );
    }
}
