//! # dfp-classify — classifiers and evaluation harness
//!
//! The model-learning substrate (paper §3, step 3 and §4's experimental
//! protocol). The paper trains LIBSVM (linear and RBF kernels) and Weka's
//! C4.5 on the transformed feature space; this crate implements the
//! equivalents from scratch:
//!
//! * [`svm::LinearSvm`] — L1-loss C-SVC trained by dual coordinate descent
//!   (the LIBLINEAR algorithm), one-vs-rest for multiclass;
//! * [`svm::KernelSvm`] — C-SVC trained by SMO with maximal-violating-pair
//!   working-set selection; linear and RBF kernels;
//! * [`tree::C45`] — gain-ratio decision tree with C4.5-style
//!   pessimistic-error pruning, specialised to binary feature spaces;
//! * [`naive_bayes::BernoulliNb`] and [`knn::Knn`] — additional simple
//!   models usable in the framework ("any learning algorithm can be used");
//! * [`eval`] — accuracy and confusion-matrix metrics;
//! * [`cv`] — stratified k-fold cross validation and grid model selection
//!   (the paper's "10-fold cross validation on each training set, pick the
//!   best model").
//!
//! All models implement [`Classifier`] over
//! [`dfp_data::features::SparseBinaryMatrix`] rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cv;
pub mod eval;
pub mod knn;
pub mod naive_bayes;
pub mod svm;
pub mod tree;

use dfp_data::features::SparseBinaryMatrix;
use dfp_data::schema::ClassId;

/// A trained classification model over sparse binary rows.
pub trait Classifier {
    /// Predicts the class of one row (sorted active feature ids).
    fn predict(&self, row: &[u32]) -> ClassId;

    /// Predicts every row of a matrix.
    fn predict_all(&self, data: &SparseBinaryMatrix) -> Vec<ClassId> {
        self.predict_batch(&data.rows)
    }

    /// Predicts a batch of raw rows (each a sorted active-feature-id list).
    /// The default loops over [`Classifier::predict`]; models with a cheaper
    /// amortised path may override it. Batch scoring (`dfpc-score`, the
    /// `/predict` endpoint) funnels through here.
    fn predict_batch(&self, rows: &[Vec<u32>]) -> Vec<ClassId> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Accuracy on a labelled matrix.
    fn accuracy(&self, data: &SparseBinaryMatrix) -> f64 {
        eval::accuracy(&self.predict_all(data), &data.labels)
    }
}

impl<C: Classifier + ?Sized> Classifier for Box<C> {
    fn predict(&self, row: &[u32]) -> ClassId {
        (**self).predict(row)
    }
}

/// Sparse dot product of two strictly ascending id lists
/// (= intersection size for binary vectors).
pub(crate) fn sparse_dot(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_dot_cases() {
        assert_eq!(sparse_dot(&[1, 3, 5], &[3, 5, 7]), 2);
        assert_eq!(sparse_dot(&[], &[1]), 0);
        assert_eq!(sparse_dot(&[2], &[2]), 1);
        assert_eq!(sparse_dot(&[1, 2, 3], &[4, 5]), 0);
    }
}
