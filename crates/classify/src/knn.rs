//! k-nearest-neighbour classifier on sparse binary rows (Hamming distance).
//!
//! A lazy baseline for the extension examples; distance between binary
//! vectors `a`, `b` is `|a| + |b| − 2·|a ∩ b|`.

use crate::{sparse_dot, Classifier};
use dfp_data::features::SparseBinaryMatrix;
use dfp_data::schema::ClassId;

/// A (lazy) k-NN model holding its training data.
#[derive(Debug, Clone)]
pub struct Knn {
    rows: Vec<Vec<u32>>,
    labels: Vec<ClassId>,
    n_classes: usize,
    k: usize,
}

impl Knn {
    /// Stores the training data; `k` is clamped to the number of rows.
    ///
    /// # Panics
    /// Panics on an empty matrix or `k == 0`.
    pub fn fit(data: &SparseBinaryMatrix, k: usize) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty matrix");
        assert!(k >= 1, "k must be at least 1");
        Knn {
            rows: data.rows.clone(),
            labels: data.labels.clone(),
            n_classes: data.n_classes,
            k: k.min(data.rows.len()),
        }
    }

    /// The stored training rows, for serialization.
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// The stored training labels, for serialization.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The neighbourhood size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Reconstructs a model from serialized state. `k` is clamped to the
    /// number of rows, matching [`Self::fit`].
    ///
    /// # Panics
    /// Panics on empty rows, `k == 0`, or a labels/rows length mismatch.
    pub fn from_parts(
        rows: Vec<Vec<u32>>,
        labels: Vec<ClassId>,
        n_classes: usize,
        k: usize,
    ) -> Self {
        assert!(!rows.is_empty(), "need at least one training row");
        assert!(k >= 1, "k must be at least 1");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let k = k.min(rows.len());
        Knn {
            rows,
            labels,
            n_classes,
            k,
        }
    }
}

impl Classifier for Knn {
    fn predict(&self, row: &[u32]) -> ClassId {
        // Distances to all training rows; ties broken by training order so
        // prediction is deterministic.
        let mut dist: Vec<(usize, usize)> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.len() + row.len() - 2 * sparse_dot(r, row), i))
            .collect();
        dist.sort_unstable();
        let mut votes = vec![0u32; self.n_classes];
        for &(_, i) in dist.iter().take(self.k) {
            votes[self.labels[i].index()] += 1;
        }
        crate::eval::majority_class(&votes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<u32>>, labels: Vec<u32>, d: usize, m: usize) -> SparseBinaryMatrix {
        SparseBinaryMatrix::new(d, rows, labels.into_iter().map(ClassId).collect(), m)
    }

    #[test]
    fn one_nn_memorises() {
        let m = matrix(
            vec![vec![0, 1], vec![2, 3], vec![0, 3]],
            vec![0, 1, 0],
            4,
            2,
        );
        let knn = Knn::fit(&m, 1);
        assert_eq!(knn.accuracy(&m), 1.0);
    }

    #[test]
    fn three_nn_smooths_outlier() {
        // One mislabeled duplicate among 4 class-0 clones: 3-NN outvotes it.
        let m = matrix(
            vec![vec![0], vec![0], vec![0], vec![0], vec![0]],
            vec![0, 0, 0, 0, 1],
            1,
            2,
        );
        let knn = Knn::fit(&m, 3);
        assert_eq!(knn.predict(&[0]), ClassId(0));
    }

    #[test]
    fn k_clamped_to_n() {
        let m = matrix(vec![vec![0], vec![1]], vec![0, 1], 2, 2);
        let knn = Knn::fit(&m, 99);
        // falls back to global vote (tie → class 0)
        assert_eq!(knn.predict(&[0]), ClassId(0));
    }

    #[test]
    fn nearest_by_hamming() {
        let m = matrix(vec![vec![0, 1, 2], vec![5, 6, 7]], vec![0, 1], 8, 2);
        let knn = Knn::fit(&m, 1);
        assert_eq!(knn.predict(&[0, 1, 5]), ClassId(0));
        assert_eq!(knn.predict(&[5, 6]), ClassId(1));
    }
}
