//! HARMONY-style associative classifier (Wang & Karypis — SDM 2005).
//!
//! HARMONY is *instance-centric*: instead of globally ranking rules, it
//! guarantees that **each training instance** contributes its top-k
//! highest-confidence covering rules (with the instance's own label) to the
//! rule set. Prediction sums the confidences of the top covering rules per
//! class and picks the best class. This is the baseline §5 compares
//! against ("our classification accuracy is significantly higher, e.g. up
//! to 11.94% on Waveform and 3.40% on Letter Recognition").

use crate::rules::{majority_class, precedence, rules_from_patterns, Rule};
use dfp_data::schema::ClassId;
use dfp_data::transactions::{Item, TransactionSet};
use dfp_mining::{mine_features, MiningConfig, MiningError};

/// HARMONY hyperparameters.
#[derive(Debug, Clone)]
pub struct HarmonyParams {
    /// Rules kept per training instance (HARMONY's K, default 1).
    pub k_per_instance: usize,
    /// Rules per class whose confidence is summed at prediction time.
    pub k_score: usize,
    /// Minimum rule confidence for candidates.
    pub min_conf: f64,
    /// Pattern-mining configuration.
    pub mining: MiningConfig,
}

impl Default for HarmonyParams {
    fn default() -> Self {
        HarmonyParams {
            k_per_instance: 1,
            k_score: 5,
            min_conf: 0.5,
            mining: MiningConfig::default(),
        }
    }
}

/// A trained HARMONY-style classifier.
#[derive(Debug, Clone)]
pub struct HarmonyClassifier {
    rules: Vec<Rule>,
    default: ClassId,
    n_classes: usize,
    k_score: usize,
}

impl HarmonyClassifier {
    /// Mines candidate rules, then performs instance-centric selection.
    pub fn fit(ts: &TransactionSet, params: &HarmonyParams) -> Result<Self, MiningError> {
        let patterns = mine_features(ts, &params.mining)?;
        let rules = rules_from_patterns(&patterns, params.min_conf);
        Ok(Self::from_rules(ts, rules, params))
    }

    /// Instance-centric selection from pre-generated candidate rules: every
    /// training instance keeps its `k_per_instance` best covering rules
    /// predicting its own label.
    pub fn from_rules(
        ts: &TransactionSet,
        mut candidates: Vec<Rule>,
        params: &HarmonyParams,
    ) -> Self {
        candidates.sort_by(precedence);
        let mut keep = vec![false; candidates.len()];
        for t in 0..ts.len() {
            let tx = ts.transaction(t);
            let label = ts.label(t);
            let mut kept = 0usize;
            for (ri, rule) in candidates.iter().enumerate() {
                if kept >= params.k_per_instance {
                    break;
                }
                if rule.class == label && rule.covers(tx) {
                    keep[ri] = true;
                    kept += 1;
                }
            }
        }
        let rules: Vec<Rule> = candidates
            .into_iter()
            .zip(keep)
            .filter_map(|(r, k)| k.then_some(r))
            .collect();
        HarmonyClassifier {
            rules,
            default: majority_class(ts),
            n_classes: ts.n_classes(),
            k_score: params.k_score.max(1),
        }
    }

    /// Predicts by summing the confidences of the `k_score` best covering
    /// rules per class (rules are stored in precedence order).
    pub fn predict(&self, tx: &[Item]) -> ClassId {
        let mut scores = vec![0.0f64; self.n_classes];
        let mut used = vec![0usize; self.n_classes];
        let mut any = false;
        for rule in &self.rules {
            let c = rule.class.index();
            if used[c] >= self.k_score {
                continue;
            }
            if rule.covers(tx) {
                scores[c] += rule.confidence();
                used[c] += 1;
                any = true;
            }
        }
        if !any {
            return self.default;
        }
        let mut best = 0usize;
        for c in 0..self.n_classes {
            if scores[c] > scores[best] {
                best = c;
            }
        }
        ClassId(best as u32)
    }

    /// Accuracy on a labelled transaction set.
    pub fn accuracy(&self, ts: &TransactionSet) -> f64 {
        if ts.is_empty() {
            return 0.0;
        }
        let hits = (0..ts.len())
            .filter(|&t| self.predict(ts.transaction(t)) == ts.label(t))
            .count();
        hits as f64 / ts.len() as f64
    }

    /// Number of rules kept.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(rows: &[(&[u32], u32)]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|(r, _)| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(1);
        let n_classes = rows.iter().map(|&(_, l)| l as usize + 1).max().unwrap_or(1);
        TransactionSet::new(
            n_items,
            n_classes,
            rows.iter()
                .map(|(r, _)| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            rows.iter().map(|&(_, l)| ClassId(l)).collect(),
        )
    }

    fn marker_db() -> TransactionSet {
        db(&[
            (&[0, 2], 0),
            (&[0], 0),
            (&[0, 2], 0),
            (&[1], 1),
            (&[1, 2], 1),
            (&[1], 1),
        ])
    }

    #[test]
    fn learns_markers() {
        let h = HarmonyClassifier::fit(&marker_db(), &HarmonyParams::default()).unwrap();
        assert_eq!(h.accuracy(&marker_db()), 1.0);
        assert_eq!(h.predict(&[Item(0), Item(2)]), ClassId(0));
    }

    #[test]
    fn every_instance_is_covered_by_a_kept_rule() {
        // HARMONY's guarantee: each training instance has at least one of its
        // highest-confidence covering rules in the set (when any exists).
        let ts = marker_db();
        let h = HarmonyClassifier::fit(&ts, &HarmonyParams::default()).unwrap();
        for t in 0..ts.len() {
            let covered = (0..h.n_rules()).any(|_| true)
                && h.rules
                    .iter()
                    .any(|r| r.class == ts.label(t) && r.covers(ts.transaction(t)));
            assert!(covered, "instance {t} lost its rule");
        }
    }

    #[test]
    fn k_per_instance_grows_rule_set() {
        let ts = marker_db();
        let small = HarmonyClassifier::fit(
            &ts,
            &HarmonyParams {
                k_per_instance: 1,
                ..HarmonyParams::default()
            },
        )
        .unwrap();
        let large = HarmonyClassifier::fit(
            &ts,
            &HarmonyParams {
                k_per_instance: 5,
                ..HarmonyParams::default()
            },
        )
        .unwrap();
        assert!(large.n_rules() >= small.n_rules());
    }

    #[test]
    fn default_for_uncovered() {
        let ts = db(&[(&[0], 0), (&[0], 0), (&[1], 1)]);
        let h = HarmonyClassifier::fit(&ts, &HarmonyParams::default()).unwrap();
        assert_eq!(h.predict(&[]), ClassId(0));
    }
}
