//! # dfp-baselines — associative-classification baselines
//!
//! The paper positions its framework against **associative classification**
//! (§5): CBA (Liu et al. 1998), CMAR (Li et al. 2001) and HARMONY (Wang &
//! Karypis 2005), reporting accuracy improvements over HARMONY of up to
//! ~12% on Waveform and ~3.4% on Letter. These rule-based classifiers are
//! implemented here so the comparison experiments can actually run:
//!
//! * [`rules`] — class-association rules (CARs) derived from mined patterns,
//!   with the CBA precedence order (confidence, support, generality);
//! * [`cba`] — CBA-style classifier: precedence-ordered rule list selected
//!   by database coverage, plus a default class;
//! * [`cmar`] — CMAR-style classifier: coverage-selected rule set, weighted
//!   χ² group voting at prediction time;
//! * [`harmony`] — HARMONY-style classifier: instance-centric selection
//!   (every training instance keeps its top-k highest-confidence covering
//!   rules), score-summed prediction.
//!
//! Unlike the paper's framework — which *re-represents* the data and hands
//! it to any learner — these baselines predict directly from rules, which is
//! exactly the architectural difference §5 highlights.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cba;
pub mod cmar;
pub mod harmony;
pub mod rules;

pub use cba::CbaClassifier;
pub use cmar::CmarClassifier;
pub use harmony::HarmonyClassifier;
pub use rules::Rule;
