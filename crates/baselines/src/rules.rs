//! Class-association rules (CARs): `pattern → class` with support and
//! confidence, plus the CBA precedence order used by all three baseline
//! classifiers.

use dfp_data::schema::ClassId;
use dfp_data::transactions::{contains_sorted, Item, TransactionSet};
use dfp_mining::MinedPattern;

/// A class-association rule `items → class`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Antecedent itemset, sorted ascending.
    pub items: Vec<Item>,
    /// Consequent class.
    pub class: ClassId,
    /// Number of covering transactions with the consequent class
    /// (the rule's absolute support in associative-classification terms).
    pub class_support: u32,
    /// Number of covering transactions of any class.
    pub cover: u32,
}

impl Rule {
    /// Rule confidence `P(class | items)`; 0 when the rule covers nothing.
    pub fn confidence(&self) -> f64 {
        if self.cover == 0 {
            0.0
        } else {
            self.class_support as f64 / self.cover as f64
        }
    }

    /// `true` iff the rule's antecedent is contained in the transaction.
    pub fn covers(&self, tx: &[Item]) -> bool {
        contains_sorted(tx, &self.items)
    }

    /// χ² statistic of the rule against its class (1 degree of freedom,
    /// 2×2 contingency of cover × class membership). Used by CMAR's
    /// weighted voting.
    pub fn chi_square(&self, class_counts: &[usize], n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let n_f = n as f64;
        let cover = self.cover as f64;
        let class_total = class_counts[self.class.index()] as f64;
        let observed = [
            self.class_support as f64,                             // cover & class
            cover - self.class_support as f64,                     // cover & ¬class
            class_total - self.class_support as f64,               // ¬cover & class
            n_f - cover - class_total + self.class_support as f64, // neither
        ];
        let expected = [
            cover * class_total / n_f,
            cover * (n_f - class_total) / n_f,
            (n_f - cover) * class_total / n_f,
            (n_f - cover) * (n_f - class_total) / n_f,
        ];
        observed
            .iter()
            .zip(&expected)
            .filter(|(_, &e)| e > 0.0)
            .map(|(&o, &e)| (o - e) * (o - e) / e)
            .sum()
    }
}

/// Derives CARs from mined patterns: one rule per `(pattern, class)` pair
/// whose confidence reaches `min_conf`. Rules come back in CBA precedence
/// order (see [`precedence`]).
pub fn rules_from_patterns(patterns: &[MinedPattern], min_conf: f64) -> Vec<Rule> {
    let mut rules: Vec<Rule> = Vec::new();
    for p in patterns {
        if p.support == 0 {
            continue;
        }
        for (c, &s) in p.class_supports.iter().enumerate() {
            if s == 0 {
                continue;
            }
            let conf = s as f64 / p.support as f64;
            if conf >= min_conf {
                rules.push(Rule {
                    items: p.items.clone(),
                    class: ClassId(c as u32),
                    class_support: s,
                    cover: p.support,
                });
            }
        }
    }
    rules.sort_by(precedence);
    rules
}

/// CBA total order on rules: higher confidence first, then higher support,
/// then fewer items (more general), then lexicographic (determinism).
pub fn precedence(a: &Rule, b: &Rule) -> std::cmp::Ordering {
    b.confidence()
        .partial_cmp(&a.confidence())
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| b.class_support.cmp(&a.class_support))
        .then_with(|| a.items.len().cmp(&b.items.len()))
        .then_with(|| a.items.cmp(&b.items))
        .then_with(|| a.class.cmp(&b.class))
}

/// Majority class of a transaction set (ties toward the smaller id).
pub fn majority_class(ts: &TransactionSet) -> ClassId {
    let counts = ts.class_counts();
    let mut best = 0usize;
    for (c, &v) in counts.iter().enumerate() {
        if v > counts[best] {
            best = c;
        }
    }
    ClassId(best as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(items: &[u32], class_supports: &[u32]) -> MinedPattern {
        MinedPattern {
            items: items.iter().map(|&i| Item(i)).collect(),
            support: class_supports.iter().sum(),
            class_supports: class_supports.to_vec(),
        }
    }

    #[test]
    fn rules_respect_min_conf() {
        let pats = vec![pattern(&[0], &[8, 2]), pattern(&[1], &[5, 5])];
        let rules = rules_from_patterns(&pats, 0.6);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].class, ClassId(0));
        assert!((rules[0].confidence() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn both_classes_can_produce_rules() {
        let pats = vec![pattern(&[0], &[5, 5])];
        let rules = rules_from_patterns(&pats, 0.5);
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn precedence_order() {
        let hi_conf = Rule {
            items: vec![Item(0)],
            class: ClassId(0),
            class_support: 4,
            cover: 4,
        };
        let hi_sup = Rule {
            items: vec![Item(1)],
            class: ClassId(0),
            class_support: 9,
            cover: 10,
        };
        let general = Rule {
            items: vec![Item(2)],
            class: ClassId(0),
            class_support: 9,
            cover: 10,
        };
        let specific = Rule {
            items: vec![Item(2), Item(3)],
            class: ClassId(0),
            class_support: 9,
            cover: 10,
        };
        assert_eq!(precedence(&hi_conf, &hi_sup), std::cmp::Ordering::Less);
        assert_eq!(precedence(&general, &specific), std::cmp::Ordering::Less);
    }

    #[test]
    fn covers_subset_semantics() {
        let r = Rule {
            items: vec![Item(1), Item(3)],
            class: ClassId(0),
            class_support: 1,
            cover: 1,
        };
        assert!(r.covers(&[Item(0), Item(1), Item(3)]));
        assert!(!r.covers(&[Item(1)]));
    }

    #[test]
    fn chi_square_zero_for_independent_rule() {
        // Rule covers half of each class → independent of class.
        let r = Rule {
            items: vec![Item(0)],
            class: ClassId(0),
            class_support: 5,
            cover: 10,
        };
        let chi = r.chi_square(&[10, 10], 20);
        assert!(chi.abs() < 1e-9);
    }

    #[test]
    fn chi_square_high_for_perfect_rule() {
        // Covers exactly class 0 → maximal association.
        let r = Rule {
            items: vec![Item(0)],
            class: ClassId(0),
            class_support: 10,
            cover: 10,
        };
        let chi = r.chi_square(&[10, 10], 20);
        assert!((chi - 20.0).abs() < 1e-9); // n·φ² with φ = 1
    }
}
