//! CBA-style associative classifier (Liu, Hsu, Ma — KDD 1998, algorithm M1).
//!
//! Rules are sorted by precedence; a rule enters the classifier if it
//! correctly classifies at least one still-uncovered training instance, at
//! which point every instance it covers is removed. The rule list is finally
//! cut at the prefix minimising training errors (rules beyond the cut are
//! dropped and the default class takes over).

use crate::rules::{majority_class, precedence, rules_from_patterns, Rule};
use dfp_data::schema::ClassId;
use dfp_data::transactions::{Item, TransactionSet};
use dfp_mining::{mine_features, MiningConfig, MiningError};

/// CBA hyperparameters.
#[derive(Debug, Clone)]
pub struct CbaParams {
    /// Minimum rule confidence (CBA default 0.5).
    pub min_conf: f64,
    /// Pattern-mining configuration for rule generation.
    pub mining: MiningConfig,
}

impl Default for CbaParams {
    fn default() -> Self {
        CbaParams {
            min_conf: 0.5,
            mining: MiningConfig::default(),
        }
    }
}

/// A trained CBA classifier: an ordered rule list plus a default class.
#[derive(Debug, Clone)]
pub struct CbaClassifier {
    rules: Vec<Rule>,
    default: ClassId,
}

impl CbaClassifier {
    /// Mines CARs from `ts` and builds the coverage-selected rule list.
    pub fn fit(ts: &TransactionSet, params: &CbaParams) -> Result<Self, MiningError> {
        let patterns = mine_features(ts, &params.mining)?;
        let rules = rules_from_patterns(&patterns, params.min_conf);
        Ok(Self::from_rules(ts, rules))
    }

    /// Builds the classifier from pre-sorted candidate rules (M1 selection).
    #[allow(clippy::needless_range_loop)] // `t` indexes both local state and `ts` accessors
    pub fn from_rules(ts: &TransactionSet, mut candidates: Vec<Rule>) -> Self {
        candidates.sort_by(precedence);
        let n = ts.len();
        let mut covered = vec![false; n];
        let mut n_covered = 0usize;

        // Select rules by database coverage, tracking errors to find the cut.
        let mut selected: Vec<Rule> = Vec::new();
        let mut defaults: Vec<ClassId> = Vec::new();
        let mut errors: Vec<usize> = Vec::new();
        let mut rule_errors = 0usize; // mistakes by selected rules on covered data

        for rule in candidates {
            if n_covered == n {
                break;
            }
            let mut correct = false;
            for t in 0..n {
                if !covered[t] && rule.covers(ts.transaction(t)) && ts.label(t) == rule.class {
                    correct = true;
                    break;
                }
            }
            if !correct {
                continue;
            }
            for t in 0..n {
                if !covered[t] && rule.covers(ts.transaction(t)) {
                    covered[t] = true;
                    n_covered += 1;
                    if ts.label(t) != rule.class {
                        rule_errors += 1;
                    }
                }
            }
            selected.push(rule);
            // Default = majority among the remaining uncovered instances.
            let mut counts = vec![0usize; ts.n_classes()];
            for t in 0..n {
                if !covered[t] {
                    counts[ts.label(t).index()] += 1;
                }
            }
            let default = arg_max(&counts);
            let default_errors: usize = counts.iter().sum::<usize>() - counts[default.index()];
            defaults.push(default);
            errors.push(rule_errors + default_errors);
        }

        let global_default = majority_class(ts);
        match errors
            .iter()
            .enumerate()
            .min_by_key(|&(i, &e)| (e, i))
            .map(|(i, _)| i)
        {
            Some(cut) => {
                selected.truncate(cut + 1);
                CbaClassifier {
                    rules: selected,
                    default: defaults[cut],
                }
            }
            None => CbaClassifier {
                rules: Vec::new(),
                default: global_default,
            },
        }
    }

    /// Predicts via the first covering rule, falling back to the default.
    pub fn predict(&self, tx: &[Item]) -> ClassId {
        self.rules
            .iter()
            .find(|r| r.covers(tx))
            .map(|r| r.class)
            .unwrap_or(self.default)
    }

    /// Accuracy on a labelled transaction set.
    pub fn accuracy(&self, ts: &TransactionSet) -> f64 {
        if ts.is_empty() {
            return 0.0;
        }
        let hits = (0..ts.len())
            .filter(|&t| self.predict(ts.transaction(t)) == ts.label(t))
            .count();
        hits as f64 / ts.len() as f64
    }

    /// Number of rules in the classifier.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }

    /// The default class.
    pub fn default_class(&self) -> ClassId {
        self.default
    }
}

fn arg_max(counts: &[usize]) -> ClassId {
    let mut best = 0usize;
    for (c, &v) in counts.iter().enumerate() {
        if v > counts[best] {
            best = c;
        }
    }
    ClassId(best as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(rows: &[(&[u32], u32)]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|(r, _)| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(1);
        let n_classes = rows.iter().map(|&(_, l)| l as usize + 1).max().unwrap_or(1);
        TransactionSet::new(
            n_items,
            n_classes,
            rows.iter()
                .map(|(r, _)| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            rows.iter().map(|&(_, l)| ClassId(l)).collect(),
        )
    }

    fn marker_db() -> TransactionSet {
        db(&[
            (&[0, 2], 0),
            (&[0], 0),
            (&[0, 2], 0),
            (&[1], 1),
            (&[1, 2], 1),
            (&[1], 1),
        ])
    }

    #[test]
    fn learns_marker_rules() {
        let cba = CbaClassifier::fit(&marker_db(), &CbaParams::default()).unwrap();
        assert_eq!(cba.accuracy(&marker_db()), 1.0);
        assert_eq!(cba.predict(&[Item(0)]), ClassId(0));
        assert_eq!(cba.predict(&[Item(1)]), ClassId(1));
        assert!(cba.n_rules() >= 1);
    }

    #[test]
    fn default_class_for_uncovered() {
        let ts = db(&[(&[0], 0), (&[0], 0), (&[1], 1)]);
        let cba = CbaClassifier::fit(&ts, &CbaParams::default()).unwrap();
        // an item no rule mentions → default
        let pred = cba.predict(&[Item(2).min(Item(0))]);
        let _ = pred; // covered by a rule or default — just must not panic
        assert!(cba.predict(&[]) == cba.default_class() || cba.n_rules() == 0);
    }

    #[test]
    fn no_rules_falls_back_to_majority() {
        let ts = db(&[(&[0], 0), (&[1], 0), (&[2], 1)]);
        let cba = CbaClassifier::from_rules(&ts, vec![]);
        assert_eq!(cba.n_rules(), 0);
        assert_eq!(cba.default_class(), ClassId(0));
        assert_eq!(cba.predict(&[Item(2)]), ClassId(0));
    }

    #[test]
    fn precedence_puts_confident_rule_first() {
        let ts = db(&[(&[0, 1], 0), (&[0, 1], 0), (&[0], 1), (&[1], 1), (&[2], 1)]);
        let cba = CbaClassifier::fit(
            &ts,
            &CbaParams {
                min_conf: 0.5,
                mining: MiningConfig::with_min_sup(0.3),
            },
        )
        .unwrap();
        // {0,1} → class 0 is 100% confident and must win over weaker rules.
        assert_eq!(cba.predict(&[Item(0), Item(1)]), ClassId(0));
    }

    #[test]
    fn error_cut_drops_harmful_tail() {
        // Construct rules where a later rule only adds errors; the cut must
        // drop it.
        let ts = db(&[(&[0], 0), (&[0], 0), (&[1], 1), (&[1], 0)]);
        let good = Rule {
            items: vec![Item(0)],
            class: ClassId(0),
            class_support: 2,
            cover: 2,
        };
        let noisy = Rule {
            items: vec![Item(1)],
            class: ClassId(1),
            class_support: 1,
            cover: 2,
        };
        let cba = CbaClassifier::from_rules(&ts, vec![good, noisy]);
        // Keeping only the good rule (+default class 0) gives 3/4; adding the
        // noisy rule also gives 3/4 — the earlier (shorter) prefix must win.
        assert_eq!(cba.n_rules(), 1);
    }
}
