//! CMAR-style associative classifier (Li, Han, Pei — ICDM 2001).
//!
//! Differences from CBA: rules are selected by *database coverage with a
//! threshold δ* (an instance is retired only after δ covering rules) and
//! prediction aggregates **all** covering rules, grouped by class, with a
//! weighted-χ² score — rather than firing only the single best rule.

use crate::rules::{majority_class, precedence, rules_from_patterns, Rule};
use dfp_data::schema::ClassId;
use dfp_data::transactions::{Item, TransactionSet};
use dfp_mining::{mine_features, MiningConfig, MiningError};

/// CMAR hyperparameters.
#[derive(Debug, Clone)]
pub struct CmarParams {
    /// Minimum rule confidence.
    pub min_conf: f64,
    /// Database-coverage threshold δ (CMAR suggests 3–4).
    pub coverage: u32,
    /// Pattern-mining configuration.
    pub mining: MiningConfig,
}

impl Default for CmarParams {
    fn default() -> Self {
        CmarParams {
            min_conf: 0.5,
            coverage: 4,
            mining: MiningConfig::default(),
        }
    }
}

/// A trained CMAR classifier.
#[derive(Debug, Clone)]
pub struct CmarClassifier {
    rules: Vec<Rule>,
    /// Per-rule weighted-χ² contribution (χ²·χ²/max-χ², CMAR §4.2).
    weights: Vec<f64>,
    default: ClassId,
    n_classes: usize,
}

impl CmarClassifier {
    /// Mines CARs and builds the coverage-δ rule set.
    pub fn fit(ts: &TransactionSet, params: &CmarParams) -> Result<Self, MiningError> {
        let patterns = mine_features(ts, &params.mining)?;
        let rules = rules_from_patterns(&patterns, params.min_conf);
        Ok(Self::from_rules(ts, rules, params.coverage))
    }

    /// Coverage-δ selection from pre-generated rules.
    #[allow(clippy::needless_range_loop)] // `t` indexes both local state and `ts` accessors
    pub fn from_rules(ts: &TransactionSet, mut candidates: Vec<Rule>, delta: u32) -> Self {
        candidates.sort_by(precedence);
        let n = ts.len();
        let mut cover_count = vec![0u32; n];
        let mut selected = Vec::new();
        for rule in candidates {
            let mut keeps = false;
            for t in 0..n {
                if cover_count[t] < delta
                    && rule.covers(ts.transaction(t))
                    && ts.label(t) == rule.class
                {
                    keeps = true;
                    break;
                }
            }
            if !keeps {
                continue;
            }
            for t in 0..n {
                if rule.covers(ts.transaction(t)) {
                    cover_count[t] = cover_count[t].saturating_add(1);
                }
            }
            selected.push(rule);
            if cover_count.iter().all(|&c| c >= delta) {
                break;
            }
        }

        // Weighted-χ²: χ² × χ² / max-χ², where max-χ² is the χ² the rule
        // would reach if it were a perfect association given its margins.
        let class_counts = ts.class_counts();
        let weights = selected
            .iter()
            .map(|r| {
                let chi = r.chi_square(&class_counts, n);
                let max_chi = max_chi_square(r, &class_counts, n);
                if max_chi > 0.0 {
                    chi * chi / max_chi
                } else {
                    0.0
                }
            })
            .collect();
        CmarClassifier {
            rules: selected,
            weights,
            default: majority_class(ts),
            n_classes: ts.n_classes(),
        }
    }

    /// Predicts by weighted-χ² group voting over all covering rules.
    pub fn predict(&self, tx: &[Item]) -> ClassId {
        let mut scores = vec![0.0f64; self.n_classes];
        let mut any = false;
        for (rule, &w) in self.rules.iter().zip(&self.weights) {
            if rule.covers(tx) {
                scores[rule.class.index()] += w;
                any = true;
            }
        }
        if !any {
            return self.default;
        }
        let mut best = 0usize;
        for c in 0..self.n_classes {
            if scores[c] > scores[best] {
                best = c;
            }
        }
        ClassId(best as u32)
    }

    /// Accuracy on a labelled transaction set.
    pub fn accuracy(&self, ts: &TransactionSet) -> f64 {
        if ts.is_empty() {
            return 0.0;
        }
        let hits = (0..ts.len())
            .filter(|&t| self.predict(ts.transaction(t)) == ts.label(t))
            .count();
        hits as f64 / ts.len() as f64
    }

    /// Number of rules kept.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }
}

/// The χ² a rule would attain at maximal association given its margins
/// (CMAR Eq. for maxχ²: `(min(cover, class_total) − cover·class_total/n)² ·
/// n² · e`, with `e` the sum of inverse expected counts).
fn max_chi_square(rule: &Rule, class_counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n_f = n as f64;
    let cover = rule.cover as f64;
    let class_total = class_counts[rule.class.index()] as f64;
    let q = cover.min(class_total) - cover * class_total / n_f;
    let e = {
        let a = cover * class_total;
        let b = cover * (n_f - class_total);
        let c = (n_f - cover) * class_total;
        let d = (n_f - cover) * (n_f - class_total);
        let mut s = 0.0;
        for x in [a, b, c, d] {
            if x > 0.0 {
                s += n_f / x;
            }
        }
        s
    };
    q * q * e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(rows: &[(&[u32], u32)]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|(r, _)| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(1);
        let n_classes = rows.iter().map(|&(_, l)| l as usize + 1).max().unwrap_or(1);
        TransactionSet::new(
            n_items,
            n_classes,
            rows.iter()
                .map(|(r, _)| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            rows.iter().map(|&(_, l)| ClassId(l)).collect(),
        )
    }

    fn marker_db() -> TransactionSet {
        db(&[
            (&[0, 2], 0),
            (&[0], 0),
            (&[0, 2], 0),
            (&[1], 1),
            (&[1, 2], 1),
            (&[1], 1),
        ])
    }

    #[test]
    fn learns_markers() {
        let cmar = CmarClassifier::fit(&marker_db(), &CmarParams::default()).unwrap();
        assert_eq!(cmar.accuracy(&marker_db()), 1.0);
    }

    #[test]
    fn group_voting_beats_single_noisy_rule() {
        // Transaction {0,1}: one confident rule says class 1 via item 1, but
        // two strong class-0 rules (items 0 and 2 patterns) dominate the vote.
        let ts = db(&[
            (&[0, 2], 0),
            (&[0, 2], 0),
            (&[0, 2], 0),
            (&[1], 1),
            (&[1], 1),
            (&[0, 1, 2], 0),
        ]);
        let cmar = CmarClassifier::fit(
            &ts,
            &CmarParams {
                mining: MiningConfig::with_min_sup(0.3),
                ..CmarParams::default()
            },
        )
        .unwrap();
        assert_eq!(cmar.predict(&[Item(0), Item(1), Item(2)]), ClassId(0));
    }

    #[test]
    fn uncovered_gets_default() {
        let ts = db(&[(&[0], 0), (&[0], 0), (&[1], 1)]);
        let cmar = CmarClassifier::fit(&ts, &CmarParams::default()).unwrap();
        assert_eq!(cmar.predict(&[]), ClassId(0)); // majority default
    }

    #[test]
    fn higher_delta_keeps_more_rules() {
        let ts = marker_db();
        let patterns = dfp_mining::mine_features(&ts, &MiningConfig::with_min_sup(0.2)).unwrap();
        let rules = rules_from_patterns(&patterns, 0.5);
        let small = CmarClassifier::from_rules(&ts, rules.clone(), 1);
        let large = CmarClassifier::from_rules(&ts, rules, 4);
        assert!(large.n_rules() >= small.n_rules());
    }

    #[test]
    fn max_chi_square_is_upper_bound() {
        let ts = marker_db();
        let class_counts = ts.class_counts();
        let r = Rule {
            items: vec![Item(0)],
            class: ClassId(0),
            class_support: 3,
            cover: 3,
        };
        let chi = r.chi_square(&class_counts, ts.len());
        let max = max_chi_square(&r, &class_counts, ts.len());
        assert!(chi <= max + 1e-9, "chi {chi} > max {max}");
    }
}
