//! Counting-only frequent itemset enumeration with an abort budget.
//!
//! The scalability experiments (paper Tables 3–5) report how many patterns
//! exist at `min_sup = 1` — 9 468 109 on Waveform, 5 147 030 on Letter, and
//! "cannot complete in days" on Chess. This module counts patterns without
//! materialising them, aborting once a budget is exceeded, so the harness
//! can print either the count or `N/A`.

use crate::{MiningError, RawPattern};
use dfp_data::bitset::Bitset;
use dfp_data::transactions::{Item, TransactionSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts the frequent itemsets with support `>= min_sup`, giving up once the
/// count exceeds `budget` (returning [`MiningError::PatternLimitExceeded`]).
///
/// Top-level items are counted on separate workers sharing one atomic budget
/// counter. The exact count (a sum) and the abort outcome (`total > budget`)
/// are both order-independent, so the result is identical at any thread count.
pub fn count_frequent(
    ts: &TransactionSet,
    min_sup: usize,
    budget: u64,
) -> Result<u64, MiningError> {
    if min_sup == 0 {
        return Err(MiningError::ZeroMinSup);
    }
    let vertical = ts.vertical();
    let cands: Vec<Bitset> = (0..ts.n_items()).map(|i| vertical[i].clone()).collect();
    let frequent: Vec<usize> = (0..ts.n_items())
        .filter(|&i| cands[i].count_ones() >= min_sup)
        .collect();
    let count = AtomicU64::new(0);
    let slots: Vec<usize> = (0..frequent.len()).collect();
    let results = dfp_par::par_map(&slots, |&i| {
        bump(&count, budget)?;
        if i + 1 < frequent.len() {
            count_dfs(
                &cands,
                &frequent[i + 1..],
                &cands[frequent[i]],
                min_sup,
                budget,
                &count,
            )?;
        }
        Ok::<(), MiningError>(())
    });
    for r in results {
        r?;
    }
    Ok(count.load(Ordering::Relaxed))
}

/// Adds one pattern to the shared counter, aborting past the budget.
fn bump(count: &AtomicU64, budget: u64) -> Result<(), MiningError> {
    if count.fetch_add(1, Ordering::Relaxed) + 1 > budget {
        return Err(MiningError::PatternLimitExceeded { limit: budget });
    }
    Ok(())
}

fn count_dfs(
    vertical: &[Bitset],
    cands: &[usize],
    prefix_tids: &Bitset,
    min_sup: usize,
    budget: u64,
    count: &AtomicU64,
) -> Result<(), MiningError> {
    for (i, &item) in cands.iter().enumerate() {
        // Early-exit threshold kernel: infrequent extensions and leaf nodes
        // are decided without materialising the intersection, so no
        // allocation happens per candidate — only per *internal* node.
        if !prefix_tids.intersection_count_at_least(&vertical[item], min_sup) {
            continue;
        }
        bump(count, budget)?;
        if i + 1 < cands.len() {
            let mut t = prefix_tids.clone();
            t.intersect_with(&vertical[item]);
            count_dfs(vertical, &cands[i + 1..], &t, min_sup, budget, count)?;
        }
    }
    Ok(())
}

/// Attaches per-class supports to raw patterns by recounting on the full
/// database (vertical bitset intersections).
pub fn attach_class_supports(
    ts: &TransactionSet,
    patterns: &[RawPattern],
) -> Vec<crate::MinedPattern> {
    let vertical = ts.vertical();
    let class_tids: Vec<Bitset> = ts
        .class_partition_indices()
        .iter()
        .map(|idx| Bitset::from_indices(ts.len(), idx.iter().copied()))
        .collect();
    patterns
        .iter()
        .map(|p| {
            let tids = pattern_tids(&vertical, ts.len(), &p.items);
            let class_supports: Vec<u32> = class_tids
                .iter()
                .map(|ct| ct.intersection_count(&tids) as u32)
                .collect();
            crate::MinedPattern {
                items: p.items.clone(),
                support: tids.count_ones() as u32,
                class_supports,
            }
        })
        .collect()
}

/// Tidset of an itemset from a vertical representation.
pub fn pattern_tids(vertical: &[Bitset], n: usize, items: &[Item]) -> Bitset {
    let mut tids = Bitset::full(n);
    for item in items {
        tids.intersect_with(&vertical[item.index()]);
    }
    tids
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;

    fn db(rows: &[&[u32]], labels: &[u32]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        let n_classes = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(1);
        TransactionSet::new(
            n_items,
            n_classes,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            labels.iter().map(|&l| ClassId(l)).collect(),
        )
    }

    #[test]
    fn count_matches_materialised_mining() {
        let ts = db(
            &[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]],
            &[0, 0, 0, 0, 0],
        );
        for min_sup in 1..=5 {
            let n = count_frequent(&ts, min_sup, u64::MAX).unwrap();
            let full = crate::eclat::mine(&ts, min_sup, &crate::MineOptions::default()).unwrap();
            assert_eq!(n as usize, full.len(), "min_sup={min_sup}");
        }
    }

    #[test]
    fn budget_aborts() {
        let ts = db(&[&[0, 1, 2, 3, 4]], &[0]);
        // 2^5 - 1 = 31 subsets; budget 10 must abort.
        let err = count_frequent(&ts, 1, 10).unwrap_err();
        assert_eq!(err, MiningError::PatternLimitExceeded { limit: 10 });
        assert_eq!(count_frequent(&ts, 1, 31).unwrap(), 31);
    }

    #[test]
    fn class_supports_attached_correctly() {
        let ts = db(&[&[0, 1], &[0, 1], &[0], &[1]], &[0, 1, 0, 1]);
        let raws = vec![
            RawPattern {
                items: vec![Item(0), Item(1)],
                support: 2,
            },
            RawPattern {
                items: vec![Item(0)],
                support: 3,
            },
        ];
        let mined = attach_class_supports(&ts, &raws);
        assert_eq!(mined[0].class_supports, vec![1, 1]);
        assert_eq!(mined[0].support, 2);
        assert_eq!(mined[1].class_supports, vec![2, 1]);
    }
}
