//! Counting-only frequent itemset enumeration with an abort budget.
//!
//! The scalability experiments (paper Tables 3–5) report how many patterns
//! exist at `min_sup = 1` — 9 468 109 on Waveform, 5 147 030 on Letter, and
//! "cannot complete in days" on Chess. This module counts patterns without
//! materialising them, aborting once a budget is exceeded, so the harness
//! can print either the count or `N/A`.

use crate::anytime::StopReason;
use crate::{MiningError, RawPattern};
use dfp_data::bitset::Bitset;
use dfp_data::rowset::RowSet;
use dfp_data::transactions::{Item, TransactionSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Outcome of an anytime count: the number of frequent itemsets seen so far
/// and whether the enumeration ran to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counted {
    /// Patterns counted. Exact when `complete`; clamped to the budget when
    /// stopped by it (the true total is strictly larger).
    pub count: u64,
    /// `true` iff the full enumeration finished within budget and deadline.
    pub complete: bool,
    /// Why the count stopped early, when `complete == false`.
    pub stopped_by: Option<StopReason>,
}

/// Counts the frequent itemsets with support `>= min_sup`, giving up once the
/// count exceeds `budget` (returning [`MiningError::PatternLimitExceeded`]).
///
/// Top-level items are counted on separate workers sharing one atomic budget
/// counter. The exact count (a sum) and the abort outcome (`total > budget`)
/// are both order-independent, so the result is identical at any thread count.
pub fn count_frequent(
    ts: &TransactionSet,
    min_sup: usize,
    budget: u64,
) -> Result<u64, MiningError> {
    let counted = count_frequent_anytime(ts, min_sup, budget, None)?;
    match counted.stopped_by {
        None => Ok(counted.count),
        Some(StopReason::PatternBudget) => Err(MiningError::PatternLimitExceeded { limit: budget }),
        Some(StopReason::Fault) => Err(MiningError::Injected("mining.count")),
        Some(StopReason::Deadline) => Err(MiningError::DeadlineExceeded),
    }
}

/// Anytime variant of [`count_frequent`]: a hit budget, an expired deadline,
/// or an armed `mining.count` failpoint stop the enumeration and return the
/// best-so-far [`Counted`] instead of failing.
///
/// The budget outcome (`true total > budget`) is order-independent and hence
/// deterministic at any thread count; the deadline outcome depends on wall
/// clock, so only the `complete`/`stopped_by` contract is guaranteed there.
pub fn count_frequent_anytime(
    ts: &TransactionSet,
    min_sup: usize,
    budget: u64,
    deadline: Option<Instant>,
) -> Result<Counted, MiningError> {
    if min_sup == 0 {
        return Err(MiningError::ZeroMinSup);
    }
    if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("mining.count") {
        return Ok(Counted {
            count: 0,
            complete: false,
            stopped_by: Some(StopReason::Fault),
        });
    }
    let vertical = ts.vertical();
    let cands: Vec<Bitset> = (0..ts.n_items()).map(|i| vertical[i].clone()).collect();
    let frequent: Vec<usize> = (0..ts.n_items())
        .filter(|&i| cands[i].count_ones() >= min_sup)
        .collect();
    let meter = Meter {
        count: AtomicU64::new(0),
        budget,
        deadline,
    };
    let slots: Vec<usize> = (0..frequent.len()).collect();
    let results = dfp_par::par_map(&slots, |&i| {
        meter.bump()?;
        if i + 1 < frequent.len() {
            count_dfs(
                &cands,
                &frequent[i + 1..],
                &cands[frequent[i]],
                min_sup,
                &meter,
            )?;
        }
        Ok::<(), StopReason>(())
    });
    // Budget stops dominate deadline stops: "total > budget" holds in every
    // run that observed it, while deadline expiry is timing-dependent.
    let mut stopped_by = None;
    for r in results {
        match r {
            Err(StopReason::PatternBudget) => {
                stopped_by = Some(StopReason::PatternBudget);
                break;
            }
            Err(reason) if stopped_by.is_none() => stopped_by = Some(reason),
            _ => {}
        }
    }
    let raw = meter.count.load(Ordering::Relaxed);
    Ok(Counted {
        count: if stopped_by == Some(StopReason::PatternBudget) {
            budget
        } else {
            raw.min(budget)
        },
        complete: stopped_by.is_none(),
        stopped_by,
    })
}

/// Shared stop state for one counting run: an atomic pattern counter with a
/// budget cap plus an optional wall-clock deadline.
struct Meter {
    count: AtomicU64,
    budget: u64,
    deadline: Option<Instant>,
}

impl Meter {
    /// Adds one pattern, stopping past the budget or the deadline.
    fn bump(&self) -> Result<(), StopReason> {
        if self.count.fetch_add(1, Ordering::Relaxed) + 1 > self.budget {
            return Err(StopReason::PatternBudget);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(StopReason::Deadline);
            }
        }
        Ok(())
    }
}

fn count_dfs(
    vertical: &[Bitset],
    cands: &[usize],
    prefix_tids: &Bitset,
    min_sup: usize,
    meter: &Meter,
) -> Result<(), StopReason> {
    for (i, &item) in cands.iter().enumerate() {
        // Early-exit threshold kernel: infrequent extensions and leaf nodes
        // are decided without materialising the intersection, so no
        // allocation happens per candidate — only per *internal* node.
        if !prefix_tids.intersection_count_at_least(&vertical[item], min_sup) {
            continue;
        }
        meter.bump()?;
        if i + 1 < cands.len() {
            let mut t = prefix_tids.clone();
            t.intersect_with(&vertical[item]);
            count_dfs(vertical, &cands[i + 1..], &t, min_sup, meter)?;
        }
    }
    Ok(())
}

/// Attaches per-class supports to raw patterns by recounting on the full
/// database (vertical row-set intersections).
///
/// The per-class counts come from one batched "pattern tidset vs. all class
/// masks" scan; because the classes partition the rows, the total support is
/// their sum — no separate counting pass.
pub fn attach_class_supports(
    ts: &TransactionSet,
    patterns: &[RawPattern],
) -> Vec<crate::MinedPattern> {
    let vertical = ts.vertical_rowsets();
    let class_masks = ts.class_masks();
    patterns
        .iter()
        .map(|p| {
            let tids = pattern_rowset(&vertical, ts.len(), &p.items);
            let counts = tids.batch_intersection_counts(&class_masks);
            let support: usize = counts.iter().sum();
            crate::MinedPattern {
                items: p.items.clone(),
                support: support as u32,
                class_supports: counts.into_iter().map(|c| c as u32).collect(),
            }
        })
        .collect()
}

/// Tidset of an itemset from a vertical representation.
pub fn pattern_tids(vertical: &[Bitset], n: usize, items: &[Item]) -> Bitset {
    let mut tids = Bitset::full(n);
    for item in items {
        tids.intersect_with(&vertical[item.index()]);
    }
    tids
}

/// Row set of an itemset from a vertical [`RowSet`] representation.
///
/// The empty itemset covers every row. Otherwise the first item's rows seed
/// the result and each further item intersects into a reused scratch slot.
pub fn pattern_rowset(vertical: &[RowSet], n: usize, items: &[Item]) -> RowSet {
    let Some((first, rest)) = items.split_first() else {
        return RowSet::Dense(Bitset::full(n));
    };
    let mut tids = vertical[first.index()].clone();
    let mut scratch = RowSet::new_scratch(n);
    for item in rest {
        tids.intersect_into(&vertical[item.index()], &mut scratch);
        std::mem::swap(&mut tids, &mut scratch);
    }
    tids
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;

    fn db(rows: &[&[u32]], labels: &[u32]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        let n_classes = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(1);
        TransactionSet::new(
            n_items,
            n_classes,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            labels.iter().map(|&l| ClassId(l)).collect(),
        )
    }

    #[test]
    fn count_matches_materialised_mining() {
        let ts = db(
            &[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]],
            &[0, 0, 0, 0, 0],
        );
        for min_sup in 1..=5 {
            let n = count_frequent(&ts, min_sup, u64::MAX).unwrap();
            let full = crate::eclat::mine(&ts, min_sup, &crate::MineOptions::default()).unwrap();
            assert_eq!(n as usize, full.len(), "min_sup={min_sup}");
        }
    }

    #[test]
    fn budget_aborts() {
        let ts = db(&[&[0, 1, 2, 3, 4]], &[0]);
        // 2^5 - 1 = 31 subsets; budget 10 must abort.
        let err = count_frequent(&ts, 1, 10).unwrap_err();
        assert_eq!(err, MiningError::PatternLimitExceeded { limit: 10 });
        assert_eq!(count_frequent(&ts, 1, 31).unwrap(), 31);
    }

    #[test]
    fn class_supports_attached_correctly() {
        let ts = db(&[&[0, 1], &[0, 1], &[0], &[1]], &[0, 1, 0, 1]);
        let raws = vec![
            RawPattern {
                items: vec![Item(0), Item(1)],
                support: 2,
            },
            RawPattern {
                items: vec![Item(0)],
                support: 3,
            },
        ];
        let mined = attach_class_supports(&ts, &raws);
        assert_eq!(mined[0].class_supports, vec![1, 1]);
        assert_eq!(mined[0].support, 2);
        assert_eq!(mined[1].class_supports, vec![2, 1]);
    }
}
