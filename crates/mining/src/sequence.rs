//! Sequential pattern mining — the paper's stated extension direction
//! (§6: "The framework is also applicable to more complex patterns,
//! including sequences and graphs").
//!
//! A compact PrefixSpan (Pei et al., ICDE 2001) for sequences of single
//! symbols: a pattern is a subsequence (gaps allowed), its support the
//! number of database sequences containing it. [`SequenceDb::transform`]
//! turns mined sequential patterns into the same sparse binary feature
//! matrices the rest of the framework consumes, so MMRFS + any classifier
//! work on sequence data unchanged.

use crate::{MineOptions, MiningError};
use dfp_data::features::SparseBinaryMatrix;
use dfp_data::schema::ClassId;

/// A labelled database of symbol sequences.
#[derive(Debug, Clone)]
pub struct SequenceDb {
    /// Symbol alphabet size; symbols are `0..n_symbols`.
    pub n_symbols: usize,
    /// The sequences.
    pub sequences: Vec<Vec<u32>>,
    /// One label per sequence.
    pub labels: Vec<ClassId>,
    /// Number of classes.
    pub n_classes: usize,
}

impl SequenceDb {
    /// Creates a database, validating symbols and labels.
    ///
    /// # Panics
    /// Panics on out-of-range symbols/labels or mismatched lengths.
    pub fn new(
        n_symbols: usize,
        sequences: Vec<Vec<u32>>,
        labels: Vec<ClassId>,
        n_classes: usize,
    ) -> Self {
        assert_eq!(sequences.len(), labels.len(), "sequences/labels mismatch");
        for (i, s) in sequences.iter().enumerate() {
            assert!(
                s.iter().all(|&x| (x as usize) < n_symbols),
                "sequence {i} has out-of-range symbol"
            );
        }
        for (i, l) in labels.iter().enumerate() {
            assert!(l.index() < n_classes, "sequence {i} label out of range");
        }
        SequenceDb {
            n_symbols,
            sequences,
            labels,
            n_classes,
        }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// `true` if the database has no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// `true` iff `pattern` is a subsequence of `seq` (gaps allowed).
    pub fn is_subsequence(pattern: &[u32], seq: &[u32]) -> bool {
        let mut pi = 0;
        for &x in seq {
            if pi < pattern.len() && pattern[pi] == x {
                pi += 1;
            }
        }
        pi == pattern.len()
    }

    /// Absolute support of a sequential pattern.
    pub fn support(&self, pattern: &[u32]) -> usize {
        self.sequences
            .iter()
            .filter(|s| Self::is_subsequence(pattern, s))
            .count()
    }

    /// Transforms the database into a binary feature matrix: feature `k`
    /// fires on sequences containing `patterns[k]` as a subsequence —
    /// the sequence analogue of the `I ∪ Fs` transform.
    pub fn transform(&self, patterns: &[SeqPattern]) -> SparseBinaryMatrix {
        let rows: Vec<Vec<u32>> = self
            .sequences
            .iter()
            .map(|s| {
                patterns
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| Self::is_subsequence(&p.symbols, s))
                    .map(|(k, _)| k as u32)
                    .collect()
            })
            .collect();
        SparseBinaryMatrix::new(patterns.len(), rows, self.labels.clone(), self.n_classes)
    }
}

/// A mined sequential pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqPattern {
    /// The symbol sequence.
    pub symbols: Vec<u32>,
    /// Absolute support (sequences containing it).
    pub support: u32,
    /// Per-class supports.
    pub class_supports: Vec<u32>,
}

/// Mines all frequent sequential patterns with PrefixSpan.
///
/// `opts.min_len`/`max_len` bound emitted/explored pattern lengths;
/// `opts.max_patterns` aborts runaway enumerations.
pub fn prefixspan(
    db: &SequenceDb,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Vec<SeqPattern>, MiningError> {
    if min_sup == 0 {
        return Err(MiningError::ZeroMinSup);
    }
    // Projection: (sequence index, offset of the first unmatched position).
    let full: Vec<(u32, u32)> = (0..db.sequences.len() as u32).map(|i| (i, 0)).collect();
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    project(db, &full, min_sup, opts, &mut prefix, &mut out)?;
    Ok(out)
}

fn project(
    db: &SequenceDb,
    proj: &[(u32, u32)],
    min_sup: usize,
    opts: &MineOptions,
    prefix: &mut Vec<u32>,
    out: &mut Vec<SeqPattern>,
) -> Result<(), MiningError> {
    // Count, per symbol, the number of projected sequences containing it
    // at or after the projection point.
    let mut counts = vec![0usize; db.n_symbols];
    for &(si, off) in proj {
        let mut seen = vec![false; db.n_symbols];
        for &x in &db.sequences[si as usize][off as usize..] {
            if !seen[x as usize] {
                seen[x as usize] = true;
                counts[x as usize] += 1;
            }
        }
    }
    for s in 0..db.n_symbols as u32 {
        if counts[s as usize] < min_sup {
            continue;
        }
        // Project onto s: first occurrence at/after the current offset.
        let next: Vec<(u32, u32)> = proj
            .iter()
            .filter_map(|&(si, off)| {
                db.sequences[si as usize][off as usize..]
                    .iter()
                    .position(|&x| x == s)
                    .map(|p| (si, off + p as u32 + 1))
            })
            .collect();
        prefix.push(s);
        if opts.len_ok(prefix.len()) {
            let mut class_supports = vec![0u32; db.n_classes];
            for &(si, _) in &next {
                class_supports[db.labels[si as usize].index()] += 1;
            }
            out.push(SeqPattern {
                symbols: prefix.clone(),
                support: next.len() as u32,
                class_supports,
            });
            if let Some(cap) = opts.max_patterns {
                if out.len() as u64 > cap {
                    return Err(MiningError::PatternLimitExceeded { limit: cap });
                }
            }
        }
        if opts.may_extend(prefix.len()) {
            project(db, &next, min_sup, opts, prefix, out)?;
        }
        prefix.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(rows: &[(&[u32], u32)]) -> SequenceDb {
        let n_symbols = rows
            .iter()
            .flat_map(|(s, _)| s.iter())
            .map(|&x| x as usize + 1)
            .max()
            .unwrap_or(1);
        let n_classes = rows.iter().map(|&(_, l)| l as usize + 1).max().unwrap_or(1);
        SequenceDb::new(
            n_symbols,
            rows.iter().map(|(s, _)| s.to_vec()).collect(),
            rows.iter().map(|&(_, l)| ClassId(l)).collect(),
            n_classes,
        )
    }

    #[test]
    fn subsequence_semantics() {
        assert!(SequenceDb::is_subsequence(&[0, 2], &[0, 1, 2]));
        assert!(SequenceDb::is_subsequence(&[], &[0]));
        assert!(!SequenceDb::is_subsequence(&[2, 0], &[0, 1, 2]));
        assert!(SequenceDb::is_subsequence(&[1, 1], &[1, 0, 1]));
        assert!(!SequenceDb::is_subsequence(&[1, 1], &[1, 0]));
    }

    #[test]
    fn hand_computed_supports() {
        let d = db(&[(&[0, 1, 2], 0), (&[0, 2], 0), (&[1, 0, 2], 1)]);
        let got = prefixspan(&d, 2, &MineOptions::default()).unwrap();
        let find = |sym: &[u32]| got.iter().find(|p| p.symbols == sym).map(|p| p.support);
        assert_eq!(find(&[0]), Some(3));
        assert_eq!(find(&[0, 2]), Some(3));
        assert_eq!(find(&[1]), Some(2));
        assert_eq!(find(&[1, 2]), Some(2));
        assert_eq!(find(&[2]), Some(3));
        // [2, 0] occurs in no sequence twice → absent at min_sup 2
        assert_eq!(find(&[2, 0]), None);
    }

    #[test]
    fn supports_match_brute_force() {
        let d = db(&[
            (&[0, 1, 0, 2], 0),
            (&[2, 1, 0], 0),
            (&[0, 0, 1], 1),
            (&[1, 2], 1),
        ]);
        let got = prefixspan(&d, 1, &MineOptions::default().with_max_len(3)).unwrap();
        for p in &got {
            assert_eq!(p.support as usize, d.support(&p.symbols), "{:?}", p.symbols);
            assert_eq!(
                p.class_supports.iter().sum::<u32>(),
                p.support,
                "{:?}",
                p.symbols
            );
        }
        // repetition handled: [0,0] is supported by sequences 0 and 2
        assert!(got.iter().any(|p| p.symbols == [0, 0] && p.support == 2));
    }

    #[test]
    fn monotone_in_min_sup() {
        let d = db(&[
            (&[0, 1, 2, 0], 0),
            (&[1, 2], 0),
            (&[2, 0, 1], 1),
            (&[0, 1], 1),
        ]);
        let mut last = usize::MAX;
        for ms in 1..=4 {
            let n = prefixspan(&d, ms, &MineOptions::default()).unwrap().len();
            assert!(n <= last);
            last = n;
        }
    }

    #[test]
    fn class_supports_correct() {
        let d = db(&[(&[0, 1], 0), (&[0, 1], 0), (&[1, 0], 1)]);
        let got = prefixspan(&d, 1, &MineOptions::default()).unwrap();
        let p01 = got.iter().find(|p| p.symbols == [0, 1]).unwrap();
        assert_eq!(p01.class_supports, vec![2, 0]);
        let p10 = got.iter().find(|p| p.symbols == [1, 0]).unwrap();
        assert_eq!(p10.class_supports, vec![0, 1]);
    }

    #[test]
    fn transform_feeds_classifiers() {
        use dfp_data::schema::ClassId;
        // order discriminates: class 0 = "0 before 1", class 1 = "1 before 0"
        let d = db(&[
            (&[0, 2, 1], 0),
            (&[0, 1], 0),
            (&[2, 0, 1], 0),
            (&[1, 0], 1),
            (&[1, 2, 0], 1),
            (&[1, 0, 2], 1),
        ]);
        let patterns = prefixspan(&d, 2, &MineOptions::default().with_min_len(2)).unwrap();
        let m = d.transform(&patterns);
        assert_eq!(m.len(), 6);
        assert_eq!(m.n_features, patterns.len());
        // the pattern [0,1] fires exactly on class-0 sequences
        let k = patterns.iter().position(|p| p.symbols == [0, 1]).unwrap() as u32;
        for t in 0..6 {
            assert_eq!(m.get(t, k), d.labels[t] == ClassId(0), "row {t}");
        }
    }

    #[test]
    fn budget_and_zero_min_sup() {
        let d = db(&[(&[0, 1, 2, 3, 4], 0)]);
        assert!(matches!(
            prefixspan(&d, 1, &MineOptions::default().with_max_patterns(5)),
            Err(MiningError::PatternLimitExceeded { .. })
        ));
        assert!(matches!(
            prefixspan(&d, 0, &MineOptions::default()),
            Err(MiningError::ZeroMinSup)
        ));
    }
}
