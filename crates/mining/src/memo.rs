//! Mining memoization: a dataset-fingerprint-keyed cache of mined pattern
//! sets.
//!
//! Repeated `fit`s on the same dataset (pipeline re-runs, model-selection
//! sweeps, CV folds that share class partitions) dominate BENCH_pipeline.json
//! with identical mining work. This module memoizes [`Mined`] results keyed
//! by an FNV-1a fingerprint of the itemized transactions plus the full miner
//! configuration, so the second identical mine call returns the cached
//! pattern set without touching the search space.
//!
//! ## Bit-inertness contract
//!
//! A cache hit must be indistinguishable from a re-run. Three invalidation
//! rules keep that true:
//!
//! * **Only complete results are cached.** Budget- or deadline-stopped
//!   results depend on wall-clock timing and thread interleaving; caching
//!   them would replay a stale truncation.
//! * **Deadline-carrying calls bypass the cache** entirely — even a complete
//!   result obtained under a deadline was deadline-raced, and a hit would
//!   skip the deadline semantics a caller asked for.
//! * **The cache disables itself while any `dfp-fault` site is armed**
//!   ([`dfp_fault::any_armed`]): a hit would silently skip armed mining
//!   failpoints, masking the faults chaos tests inject.
//!
//! The cache is process-global and bounded (FIFO eviction). `DFP_CACHE=0`
//! (or `off`/`false`) disables it; [`set_enabled`] overrides the environment
//! programmatically (tests).

use crate::anytime::Mined;
use crate::per_class::MinerKind;
use crate::{MineOptions, MiningError, RawPattern};
use dfp_data::transactions::TransactionSet;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Version of the dataset fingerprint algorithm. Persisted with model
/// artifacts (`SEC_CACHE_KEY`) so a loader can tell whether a stored
/// fingerprint is comparable to one it would compute itself.
pub const FINGERPRINT_VERSION: u16 = 1;

/// Most entries kept before FIFO eviction. Pattern sets are shared `Arc`s,
/// so the bound is on entry count, not bytes; 64 covers every CV fold ×
/// class partition combination real configurations produce.
const CACHE_CAP: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a stream of `u64` words (values are fed little-endian).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The 64-bit FNV-1a fingerprint of an itemized transaction database:
/// universe size, class count, and every transaction's items and label, in
/// order. Two databases with equal fingerprints are treated as identical by
/// the mining cache (the usual 64-bit collision caveat applies; see
/// DESIGN.md §12).
pub fn fingerprint(ts: &TransactionSet) -> u64 {
    let mut h = Fnv::new();
    h.word(ts.n_items() as u64);
    h.word(ts.n_classes() as u64);
    h.word(ts.len() as u64);
    for (t, txn) in ts.transactions().iter().enumerate() {
        h.word(txn.len() as u64);
        for item in txn {
            h.word(u64::from(item.0));
        }
        h.word(u64::from(ts.label(t).0));
    }
    h.0
}

/// Full cache key: dataset fingerprint plus every miner-config field that
/// changes the output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    fingerprint: u64,
    n_transactions: usize,
    n_items: usize,
    miner: u8,
    min_sup: usize,
    min_len: usize,
    max_len: Option<usize>,
    max_patterns: Option<u64>,
}

fn miner_tag(kind: MinerKind) -> u8 {
    match kind {
        MinerKind::Closed => 0,
        MinerKind::FpGrowth => 1,
        MinerKind::Eclat => 2,
        MinerKind::Apriori => 3,
        MinerKind::Nodeset => 4,
    }
}

struct Store {
    map: HashMap<Key, Arc<Vec<RawPattern>>>,
    order: VecDeque<Key>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(Store {
            map: HashMap::new(),
            order: VecDeque::new(),
        })
    })
}

/// Programmatic enable override: 0 = follow `DFP_CACHE`, 1 = forced on,
/// 2 = forced off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static CELL: OnceLock<bool> = OnceLock::new();
    *CELL.get_or_init(|| {
        !std::env::var("DFP_CACHE")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "0" || v == "off" || v == "false"
            })
            .unwrap_or(false)
    })
}

/// Forces the mining cache on (`Some(true)`), off (`Some(false)`), or back
/// to the `DFP_CACHE` environment default (`None`). Test hook — determinism
/// suites that compare repeated runs disable the cache so every run does
/// real work.
pub fn set_enabled(enabled: Option<bool>) {
    OVERRIDE.store(
        match enabled {
            None => 0,
            Some(true) => 1,
            Some(false) => 2,
        },
        Ordering::Release,
    );
}

/// Whether the cache is configured on (environment + override), ignoring
/// the fault-arming gate.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Acquire) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

/// Whether a lookup right now would consult the cache: configured on and no
/// fault-injection site armed anywhere.
pub fn cache_active() -> bool {
    enabled() && !dfp_fault::any_armed()
}

/// Empties the cache (test hook).
pub fn clear() {
    let mut s = store().lock().unwrap_or_else(|e| e.into_inner());
    s.map.clear();
    s.order.clear();
}

/// Memoizes one anytime mine call: on a hit returns the cached complete
/// result, on a miss runs `run` and caches its result when it is complete.
/// Deadline-carrying options and an armed failpoint table bypass the cache
/// (see the module docs for why). Hit/miss totals land on the global
/// `dfp_cache_mining_{hits,misses}_total` counters.
pub fn mine_cached(
    kind: MinerKind,
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
    run: impl FnOnce() -> Result<Mined, MiningError>,
) -> Result<Mined, MiningError> {
    if opts.deadline.is_some() || !cache_active() {
        return run();
    }
    let key = Key {
        fingerprint: fingerprint(ts),
        n_transactions: ts.len(),
        n_items: ts.n_items(),
        miner: miner_tag(kind),
        min_sup,
        min_len: opts.min_len,
        max_len: opts.max_len,
        max_patterns: opts.max_patterns,
    };
    let cached = {
        let s = store().lock().unwrap_or_else(|e| e.into_inner());
        s.map.get(&key).cloned()
    };
    if let Some(patterns) = cached {
        dfp_obs::metrics::dfp::cache_mining_hits().inc();
        return Ok(Mined::complete(patterns.as_ref().clone()));
    }
    dfp_obs::metrics::dfp::cache_mining_misses().inc();
    let mined = run()?;
    if mined.complete {
        let mut s = store().lock().unwrap_or_else(|e| e.into_inner());
        if !s.map.contains_key(&key) {
            while s.order.len() >= CACHE_CAP {
                if let Some(old) = s.order.pop_front() {
                    s.map.remove(&old);
                }
            }
            s.map.insert(key.clone(), Arc::new(mined.patterns.clone()));
            s.order.push_back(key);
        }
    }
    Ok(mined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;
    use dfp_data::transactions::Item;
    use std::sync::Mutex as StdMutex;

    /// The cache and the enable override are process-global; tests
    /// serialise through this.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn db(rows: &[(&[u32], u32)]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|(r, _)| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(1);
        let n_classes = rows.iter().map(|&(_, l)| l as usize + 1).max().unwrap_or(1);
        TransactionSet::new(
            n_items,
            n_classes,
            rows.iter()
                .map(|(r, _)| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            rows.iter().map(|&(_, l)| ClassId(l)).collect(),
        )
    }

    #[test]
    fn fingerprint_distinguishes_data_and_labels() {
        let a = db(&[(&[0, 1], 0), (&[1, 2], 1)]);
        let b = db(&[(&[0, 1], 0), (&[1, 2], 0)]); // label changed
        let c = db(&[(&[0, 1], 0), (&[0, 2], 1)]); // item changed
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn second_identical_call_hits() {
        let _g = lock();
        set_enabled(Some(true));
        clear();
        // A dataset no other test mines, so concurrent unit tests sharing
        // the process-global cache cannot interfere.
        let ts = db(&[(&[0, 1, 7], 0), (&[0, 1, 7], 0), (&[0, 2, 7], 1)]);
        let opts = MineOptions::default();
        let calls = std::cell::Cell::new(0u32);
        let run = || {
            calls.set(calls.get() + 1);
            crate::closed::mine_closed_anytime(&ts, 1, &opts)
        };
        let first = mine_cached(MinerKind::Closed, &ts, 1, &opts, run).unwrap();
        let second = mine_cached(MinerKind::Closed, &ts, 1, &opts, run).unwrap();
        assert_eq!(first, second);
        assert!(second.complete);
        assert_eq!(calls.get(), 1, "second call must be a cache hit");
        set_enabled(None);
    }

    #[test]
    fn different_min_sup_misses() {
        let _g = lock();
        set_enabled(Some(true));
        clear();
        let ts = db(&[(&[0, 1], 0), (&[0, 1], 0), (&[0, 2], 1)]);
        let opts = MineOptions::default();
        let a = mine_cached(MinerKind::Closed, &ts, 1, &opts, || {
            crate::closed::mine_closed_anytime(&ts, 1, &opts)
        })
        .unwrap();
        let b = mine_cached(MinerKind::Closed, &ts, 2, &opts, || {
            crate::closed::mine_closed_anytime(&ts, 2, &opts)
        })
        .unwrap();
        assert_ne!(a.patterns, b.patterns);
        set_enabled(None);
    }

    #[test]
    fn incomplete_results_are_not_cached() {
        let _g = lock();
        set_enabled(Some(true));
        clear();
        let ts = db(&[(&[0, 1, 2], 0), (&[0, 1, 2], 0)]);
        let opts = MineOptions::default().with_max_patterns(1);
        let calls = std::cell::Cell::new(0u32);
        let run = || {
            calls.set(calls.get() + 1);
            crate::eclat::mine_anytime(&ts, 1, &opts)
        };
        let first = mine_cached(MinerKind::Eclat, &ts, 1, &opts, run).unwrap();
        assert!(!first.complete);
        // A second call must run the miner again, not replay a truncation.
        let _ = mine_cached(MinerKind::Eclat, &ts, 1, &opts, run).unwrap();
        assert_eq!(calls.get(), 2, "incomplete result must not be replayed");
        set_enabled(None);
    }

    #[test]
    fn armed_faults_disable_the_cache() {
        let _g = lock();
        set_enabled(Some(true));
        clear();
        dfp_fault::arm("memo.test", dfp_fault::Action::Err);
        assert!(!cache_active());
        dfp_fault::disarm("memo.test");
        set_enabled(None);
    }

    #[test]
    fn deadline_calls_bypass() {
        let _g = lock();
        set_enabled(Some(true));
        clear();
        let ts = db(&[(&[0], 0)]);
        let opts = MineOptions::default()
            .with_deadline(std::time::Instant::now() + std::time::Duration::from_secs(60));
        let calls = std::cell::Cell::new(0u32);
        for _ in 0..2 {
            let _ = mine_cached(MinerKind::Eclat, &ts, 1, &opts, || {
                calls.set(calls.get() + 1);
                crate::eclat::mine_anytime(&ts, 1, &opts)
            })
            .unwrap();
        }
        assert_eq!(calls.get(), 2, "deadline-carrying calls must bypass");
        set_enabled(None);
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let _g = lock();
        set_enabled(Some(true));
        clear();
        let ts = db(&[(&[0, 1], 0)]);
        let opts = MineOptions::default();
        for sup in 1..=(CACHE_CAP + 8) {
            let _ = mine_cached(MinerKind::Eclat, &ts, sup, &opts, || {
                crate::eclat::mine_anytime(&ts, 1, &opts)
            });
        }
        let s = store().lock().unwrap();
        assert!(s.map.len() <= CACHE_CAP);
        assert_eq!(s.map.len(), s.order.len());
        drop(s);
        set_enabled(None);
    }
}
