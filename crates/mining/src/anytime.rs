//! Anytime (best-so-far) mining results and the shared stop machinery.
//!
//! The paper's §3.1.2 support/discriminance bounds argue that low-support
//! tail patterns carry little discriminative power, so stopping a miner at a
//! pattern budget or deadline and keeping what it found so far is a
//! principled degradation, not a correctness loss. Every miner in this crate
//! therefore has two entry points:
//!
//! * `mine(..) -> Result<Vec<RawPattern>, MiningError>` — the strict API:
//!   hitting the budget or deadline is an error (the seed behavior);
//! * `mine_anytime(..) -> Result<Mined, MiningError>` — the degrading API:
//!   the same limits stop the search and return the patterns found so far,
//!   flagged `complete: false` with a [`StopReason`].
//!
//! ## Determinism under a budget
//!
//! Budget-stopped anytime mining is **deterministic across thread counts**:
//! parallel tasks emit their sequential-order output streams, the streams
//! are concatenated in sequential task order, and the budget truncates that
//! concatenation — so the surviving prefix is exactly what a sequential run
//! would keep. Deadline stops are inherently timing-dependent; only the
//! `complete`/`stopped_by` contract (not the exact pattern set) is
//! guaranteed for them.

use crate::{MineOptions, MiningError, RawPattern};
use std::time::Instant;

/// Why an anytime miner stopped before exhausting the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `opts.max_patterns` was reached.
    PatternBudget,
    /// `opts.deadline` passed.
    Deadline,
    /// A `dfp-fault` failpoint injected a failure.
    Fault,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::PatternBudget => write!(f, "pattern budget"),
            StopReason::Deadline => write!(f, "deadline"),
            StopReason::Fault => write!(f, "injected fault"),
        }
    }
}

/// Best-so-far output of an anytime miner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mined {
    /// The patterns found before the stop (everything, when `complete`).
    pub patterns: Vec<RawPattern>,
    /// `true` when the search space was exhausted.
    pub complete: bool,
    /// Why mining stopped early; `None` when `complete`.
    pub stopped_by: Option<StopReason>,
}

impl Mined {
    /// A finished, exhaustive result.
    pub fn complete(patterns: Vec<RawPattern>) -> Self {
        Mined {
            patterns,
            complete: true,
            stopped_by: None,
        }
    }

    /// A best-so-far result stopped by `reason`.
    pub fn stopped(patterns: Vec<RawPattern>, reason: StopReason) -> Self {
        Mined {
            patterns,
            complete: false,
            stopped_by: Some(reason),
        }
    }
}

/// Checks the per-emission stop conditions: `n_emitted` patterns are out and
/// the options may cap them; the deadline may have passed.
pub(crate) fn check_stop(n_emitted: usize, opts: &MineOptions) -> Result<(), StopReason> {
    if let Some(cap) = opts.max_patterns {
        if n_emitted as u64 > cap {
            return Err(StopReason::PatternBudget);
        }
    }
    if let Some(deadline) = opts.deadline {
        if Instant::now() >= deadline {
            return Err(StopReason::Deadline);
        }
    }
    Ok(())
}

/// Merges parallel tasks' `(patterns, stop)` outputs in sequential task
/// order, truncating at the cumulative budget, into one [`Mined`] — the
/// shared tail of every parallel miner's anytime entry point.
pub(crate) fn merge_task_outputs(
    seeded: Vec<RawPattern>,
    results: Vec<(Vec<RawPattern>, Option<StopReason>)>,
    opts: &MineOptions,
) -> Mined {
    let mut out = seeded;
    for (task_out, task_stop) in results {
        out.extend(task_out);
        if let Some(cap) = opts.max_patterns {
            if out.len() as u64 > cap {
                out.truncate(cap as usize);
                return Mined::stopped(out, StopReason::PatternBudget);
            }
        }
        if let Some(reason) = task_stop {
            return Mined::stopped(out, reason);
        }
    }
    Mined::complete(out)
}

/// Converts an anytime result into the strict API's outcome: incomplete
/// results become the corresponding [`MiningError`] (`site` names the
/// failpoint for injected faults).
pub(crate) fn strict(
    mined: Mined,
    opts: &MineOptions,
    site: &'static str,
) -> Result<Vec<RawPattern>, MiningError> {
    match mined.stopped_by {
        None => Ok(mined.patterns),
        Some(StopReason::PatternBudget) => Err(MiningError::PatternLimitExceeded {
            limit: opts.max_patterns.unwrap_or(0),
        }),
        Some(StopReason::Deadline) => Err(MiningError::DeadlineExceeded),
        Some(StopReason::Fault) => Err(MiningError::Injected(site)),
    }
}

/// Truncates a sequential miner's best-so-far output at the budget (the
/// stop fires after the `cap + 1`-th emission, so one pattern is shed).
pub(crate) fn stopped_sequential(
    mut out: Vec<RawPattern>,
    reason: StopReason,
    opts: &MineOptions,
) -> Mined {
    if reason == StopReason::PatternBudget {
        if let Some(cap) = opts.max_patterns {
            out.truncate(cap as usize);
        }
    }
    Mined::stopped(out, reason)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::transactions::Item;

    fn pat(id: u32) -> RawPattern {
        RawPattern {
            items: vec![Item(id)],
            support: 1,
        }
    }

    #[test]
    fn merge_truncates_at_cumulative_budget() {
        let opts = MineOptions::default().with_max_patterns(3);
        let m = merge_task_outputs(
            vec![pat(0)],
            vec![(vec![pat(1), pat(2)], None), (vec![pat(3), pat(4)], None)],
            &opts,
        );
        assert!(!m.complete);
        assert_eq!(m.stopped_by, Some(StopReason::PatternBudget));
        assert_eq!(m.patterns, vec![pat(0), pat(1), pat(2)]);
    }

    #[test]
    fn merge_stops_at_first_task_stop() {
        let opts = MineOptions::default();
        let m = merge_task_outputs(
            Vec::new(),
            vec![
                (vec![pat(1)], Some(StopReason::Deadline)),
                (vec![pat(2)], None),
            ],
            &opts,
        );
        assert_eq!(m.stopped_by, Some(StopReason::Deadline));
        assert_eq!(m.patterns, vec![pat(1)]);
    }

    #[test]
    fn merge_complete_when_nothing_stops() {
        let opts = MineOptions::default().with_max_patterns(10);
        let m = merge_task_outputs(Vec::new(), vec![(vec![pat(1)], None)], &opts);
        assert!(m.complete);
        assert_eq!(m.stopped_by, None);
    }

    #[test]
    fn check_stop_orders_budget_before_deadline() {
        let opts = MineOptions::default()
            .with_max_patterns(2)
            .with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        assert_eq!(check_stop(3, &opts), Err(StopReason::PatternBudget));
        assert_eq!(check_stop(1, &opts), Err(StopReason::Deadline));
    }
}
