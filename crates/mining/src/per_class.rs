//! The feature-generation step of the framework (paper §3):
//!
//! > "In the feature generation step, frequent patterns are generated with a
//! > user-specified min_sup. The data is partitioned according to the class
//! > label. Frequent patterns are discovered in each partition with min_sup.
//! > The collection of frequent patterns F is the feature candidates."
//!
//! [`mine_features`] mines each class partition at the configured *relative*
//! support, merges the per-class results (deduplicating shared patterns),
//! and recounts global and per-class supports on the full database.

use crate::anytime::{Mined, StopReason};
use crate::count::attach_class_supports;
use crate::{
    apriori, closed, eclat, fpgrowth, nodeset, MineOptions, MinedPattern, MiningError, RawPattern,
};
use dfp_data::transactions::{Item, TransactionSet};
use std::collections::HashSet;

/// Which mining algorithm feature generation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinerKind {
    /// Closed-set miner (the paper's choice — FPClose-style).
    #[default]
    Closed,
    /// All frequent sets via FP-growth.
    FpGrowth,
    /// All frequent sets via vertical DFS (Eclat).
    Eclat,
    /// All frequent sets via level-wise Apriori (ablation baseline).
    Apriori,
    /// All frequent sets via PPC-tree (Diff)Nodeset intersection — the
    /// fastest backend on dense data (`dfp-nodeset`).
    Nodeset,
}

impl MinerKind {
    /// The accepted spellings, in `--miner` / `DFP_MINER` order.
    pub const NAMES: [&'static str; 5] = ["closed", "fpgrowth", "eclat", "apriori", "nodeset"];

    /// The canonical lowercase spelling.
    pub fn name(self) -> &'static str {
        match self {
            MinerKind::Closed => "closed",
            MinerKind::FpGrowth => "fpgrowth",
            MinerKind::Eclat => "eclat",
            MinerKind::Apriori => "apriori",
            MinerKind::Nodeset => "nodeset",
        }
    }

    /// Reads the `DFP_MINER` environment override: `Ok(None)` when unset
    /// or blank, `Ok(Some(kind))` on a valid spelling, and the parse
    /// error (naming the valid values) on anything else.
    ///
    /// Read fresh on every call — tests and long-lived processes may
    /// change the variable between fits.
    pub fn from_env() -> Result<Option<MinerKind>, String> {
        match std::env::var("DFP_MINER") {
            Err(_) => Ok(None),
            Ok(v) if v.trim().is_empty() => Ok(None),
            Ok(v) => v.parse().map(Some),
        }
    }

    /// The miner defaults resolve to: a *valid* `DFP_MINER` value, else
    /// [`MinerKind::Closed`] (the paper's choice). Invalid values fall
    /// back silently here — surfaces that take user input (`--miner`,
    /// the binaries' `DFP_MINER` checks) report the parse error loudly
    /// instead.
    pub fn env_default() -> MinerKind {
        MinerKind::from_env().ok().flatten().unwrap_or_default()
    }
}

impl std::fmt::Display for MinerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for MinerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "closed" => Ok(MinerKind::Closed),
            "fpgrowth" | "fp-growth" | "growth" => Ok(MinerKind::FpGrowth),
            "eclat" => Ok(MinerKind::Eclat),
            "apriori" => Ok(MinerKind::Apriori),
            "nodeset" | "diffnodeset" | "dfin" => Ok(MinerKind::Nodeset),
            other => Err(format!(
                "unknown miner '{other}' (valid miners: {})",
                MinerKind::NAMES.join(", ")
            )),
        }
    }
}

/// Configuration of the feature-generation step.
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// Relative `min_sup` `θ0 ∈ (0, 1]` applied inside each class partition.
    pub min_sup_rel: f64,
    /// Algorithm to use.
    pub miner: MinerKind,
    /// Shared miner options (lengths, pattern budget).
    pub options: MineOptions,
    /// If `true` (default) partitions are mined separately per class, as the
    /// paper prescribes; if `false`, the whole database is mined once —
    /// exposed for ablation.
    pub per_class: bool,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            min_sup_rel: 0.1,
            // Honors a valid `DFP_MINER` override so whole-pipeline runs
            // can switch backends from the environment; explicit `miner:`
            // assignments (as in the cross-backend tests) still win.
            miner: MinerKind::env_default(),
            options: MineOptions::default(),
            per_class: true,
        }
    }
}

impl MiningConfig {
    /// Config with the given relative support, paper defaults otherwise.
    pub fn with_min_sup(min_sup_rel: f64) -> Self {
        MiningConfig {
            min_sup_rel,
            ..MiningConfig::default()
        }
    }

    /// Absolute support inside a partition of `n` transactions (at least 1).
    pub fn abs_min_sup(&self, n: usize) -> usize {
        ((n as f64 * self.min_sup_rel).ceil() as usize).max(1)
    }
}

/// Dispatches to the configured miner through the memoization cache: an
/// identical `(dataset, miner, min_sup, options)` call seen before — e.g. a
/// CV fold whose class partition matches a previous fold's — is answered
/// from [`crate::memo`] without re-mining.
fn run_miner_anytime(
    kind: MinerKind,
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Mined, MiningError> {
    crate::memo::mine_cached(kind, ts, min_sup, opts, || match kind {
        MinerKind::Closed => closed::mine_closed_anytime(ts, min_sup, opts),
        MinerKind::FpGrowth => fpgrowth::mine_anytime(ts, min_sup, opts),
        MinerKind::Eclat => eclat::mine_anytime(ts, min_sup, opts),
        MinerKind::Apriori => apriori::mine_anytime(ts, min_sup, opts),
        MinerKind::Nodeset => nodeset::mine_anytime(ts, min_sup, opts),
    })
}

/// The feature-candidate set produced by anytime feature generation, with
/// the degradation outcome attached.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedFeatures {
    /// Deduplicated features with full-database global/per-class supports.
    pub patterns: Vec<MinedPattern>,
    /// `true` iff every class partition was mined to completion.
    pub complete: bool,
    /// Why mining stopped early (first stopped partition in class order),
    /// when `complete == false`.
    pub stopped_by: Option<StopReason>,
}

/// Runs feature generation: per-class (or global) mining, merge, and
/// global/per-class support recounting. The returned patterns' `support`
/// and `class_supports` refer to the **full** database `ts`, not the
/// partition they were discovered in.
///
/// Strict counterpart of [`mine_features_anytime`]: a budget, deadline, or
/// fault stop in any partition becomes an error.
pub fn mine_features(
    ts: &TransactionSet,
    cfg: &MiningConfig,
) -> Result<Vec<MinedPattern>, MiningError> {
    let feats = mine_features_anytime(ts, cfg)?;
    match feats.stopped_by {
        None => Ok(feats.patterns),
        Some(StopReason::PatternBudget) => Err(MiningError::PatternLimitExceeded {
            limit: cfg.options.max_patterns.unwrap_or(0),
        }),
        Some(StopReason::Deadline) => Err(MiningError::DeadlineExceeded),
        Some(StopReason::Fault) => Err(MiningError::Injected("mining.per_class")),
    }
}

/// Anytime feature generation: partitions that hit the pattern budget or the
/// deadline contribute their best-so-far patterns, and the outcome is
/// reported in [`MinedFeatures::complete`] / [`MinedFeatures::stopped_by`]
/// instead of an error. An armed `mining.per_class` failpoint degrades the
/// whole step to an empty, incomplete feature set.
pub fn mine_features_anytime(
    ts: &TransactionSet,
    cfg: &MiningConfig,
) -> Result<MinedFeatures, MiningError> {
    let mut sp = dfp_obs::span("mine.per_class");
    if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("mining.per_class") {
        return Ok(MinedFeatures {
            patterns: Vec::new(),
            complete: false,
            stopped_by: Some(StopReason::Fault),
        });
    }
    let mut merged: Vec<Vec<Item>> = Vec::new();
    let mut seen: HashSet<Vec<Item>> = HashSet::new();
    let mut stopped_by: Option<StopReason> = None;

    let mut add_all = |mined: Mined, stopped_by: &mut Option<StopReason>| {
        if stopped_by.is_none() {
            *stopped_by = mined.stopped_by;
        }
        for p in mined.patterns {
            if seen.insert(p.items.clone()) {
                merged.push(p.items);
            }
        }
    };

    if cfg.per_class {
        // Each class partition is an independent mining problem — run them on
        // separate workers and merge in class order so the dedup (first class
        // to produce a pattern wins) matches the sequential loop exactly.
        let parts: Vec<TransactionSet> = ts
            .class_partitions()
            .into_iter()
            .filter(|p| !p.is_empty())
            .collect();
        let results: Vec<Result<Mined, MiningError>> = dfp_par::par_map(&parts, |part| {
            let min_sup = cfg.abs_min_sup(part.len());
            run_miner_anytime(cfg.miner, part, min_sup, &cfg.options)
        });
        for r in results {
            add_all(r?, &mut stopped_by);
        }
    } else {
        let min_sup = cfg.abs_min_sup(ts.len());
        let mined = run_miner_anytime(cfg.miner, ts, min_sup, &cfg.options)?;
        add_all(mined, &mut stopped_by);
    }

    let raws: Vec<RawPattern> = merged
        .into_iter()
        .map(|items| RawPattern { items, support: 0 })
        .collect();
    let mut mined = attach_class_supports(ts, &raws);
    // Deterministic order: descending support, then canonical itemset order.
    mined.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.items.len().cmp(&b.items.len()))
            .then_with(|| a.items.cmp(&b.items))
    });
    sp.attr("features", mined.len());
    sp.attr("complete", stopped_by.is_none());
    Ok(MinedFeatures {
        patterns: mined,
        complete: stopped_by.is_none(),
        stopped_by,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;

    fn db(rows: &[(&[u32], u32)]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|(r, _)| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        let n_classes = rows.iter().map(|&(_, l)| l as usize + 1).max().unwrap_or(1);
        TransactionSet::new(
            n_items,
            n_classes,
            rows.iter()
                .map(|(r, _)| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            rows.iter().map(|&(_, l)| ClassId(l)).collect(),
        )
    }

    fn sample() -> TransactionSet {
        db(&[
            (&[0, 1, 2], 0),
            (&[0, 1], 0),
            (&[0, 2], 0),
            (&[3, 4], 1),
            (&[3, 4, 2], 1),
            (&[3, 1], 1),
        ])
    }

    #[test]
    fn per_class_finds_class_local_patterns() {
        // {3,4} has global support 2/6 = 0.33 but 2/3 = 0.67 within class 1.
        let cfg = MiningConfig {
            min_sup_rel: 0.6,
            miner: MinerKind::Closed,
            options: MineOptions::default(),
            per_class: true,
        };
        let feats = mine_features(&sample(), &cfg).unwrap();
        assert!(
            feats.iter().any(|p| p.items == vec![Item(3), Item(4)]),
            "{feats:?}"
        );
        // Global supports are recounted on the full db.
        let p34 = feats
            .iter()
            .find(|p| p.items == vec![Item(3), Item(4)])
            .unwrap();
        assert_eq!(p34.support, 2);
        assert_eq!(p34.class_supports, vec![0, 2]);
    }

    #[test]
    fn global_mining_misses_class_local_patterns() {
        let cfg = MiningConfig {
            min_sup_rel: 0.6,
            miner: MinerKind::Closed,
            options: MineOptions::default(),
            per_class: false,
        };
        let feats = mine_features(&sample(), &cfg).unwrap();
        assert!(!feats.iter().any(|p| p.items == vec![Item(3), Item(4)]));
    }

    #[test]
    fn all_miners_agree_on_feature_sets() {
        let base = MiningConfig {
            min_sup_rel: 0.5,
            miner: MinerKind::FpGrowth,
            options: MineOptions::default(),
            per_class: true,
        };
        let fp = mine_features(&sample(), &base).unwrap();
        for kind in [MinerKind::Eclat, MinerKind::Apriori] {
            let cfg = MiningConfig {
                miner: kind,
                ..base.clone()
            };
            let other = mine_features(&sample(), &cfg).unwrap();
            assert_eq!(fp, other, "{kind:?}");
        }
    }

    #[test]
    fn closed_features_are_subset_of_frequent_features() {
        let all = mine_features(
            &sample(),
            &MiningConfig {
                min_sup_rel: 0.4,
                miner: MinerKind::Eclat,
                ..MiningConfig::default()
            },
        )
        .unwrap();
        let closed = mine_features(
            &sample(),
            &MiningConfig {
                min_sup_rel: 0.4,
                miner: MinerKind::Closed,
                ..MiningConfig::default()
            },
        )
        .unwrap();
        assert!(closed.len() <= all.len());
        let all_sets: HashSet<&Vec<Item>> = all.iter().map(|p| &p.items).collect();
        for c in &closed {
            assert!(all_sets.contains(&c.items));
        }
    }

    #[test]
    fn miner_kind_parses_every_canonical_name() {
        for name in MinerKind::NAMES {
            let kind: MinerKind = name.parse().unwrap();
            assert_eq!(kind.name(), name);
        }
        assert_eq!("FP-Growth".parse::<MinerKind>(), Ok(MinerKind::FpGrowth));
        assert_eq!(" dfin ".parse::<MinerKind>(), Ok(MinerKind::Nodeset));
    }

    #[test]
    fn miner_kind_parse_error_names_the_valid_values() {
        let err = "fpclose".parse::<MinerKind>().unwrap_err();
        assert!(err.contains("unknown miner 'fpclose'"), "{err}");
        for name in MinerKind::NAMES {
            assert!(err.contains(name), "{err} missing {name}");
        }
    }

    #[test]
    fn env_override_parses_and_falls_back() {
        // `DFP_MINER` is process-global; keep the window small and restore.
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = std::env::var("DFP_MINER").ok();
        std::env::set_var("DFP_MINER", "eclat");
        assert_eq!(MinerKind::from_env(), Ok(Some(MinerKind::Eclat)));
        assert_eq!(MinerKind::env_default(), MinerKind::Eclat);
        assert_eq!(MiningConfig::default().miner, MinerKind::Eclat);
        std::env::set_var("DFP_MINER", "not-a-miner");
        assert!(MinerKind::from_env().is_err());
        assert_eq!(MinerKind::env_default(), MinerKind::Closed);
        std::env::set_var("DFP_MINER", "  ");
        assert_eq!(MinerKind::from_env(), Ok(None));
        match saved {
            Some(v) => std::env::set_var("DFP_MINER", v),
            None => std::env::remove_var("DFP_MINER"),
        }
    }

    #[test]
    fn nodeset_agrees_with_the_other_miners_on_features() {
        let base = MiningConfig {
            min_sup_rel: 0.5,
            miner: MinerKind::FpGrowth,
            options: MineOptions::default(),
            per_class: true,
        };
        let fp = mine_features(&sample(), &base).unwrap();
        let nd = mine_features(
            &sample(),
            &MiningConfig {
                miner: MinerKind::Nodeset,
                ..base
            },
        )
        .unwrap();
        assert_eq!(fp, nd);
    }

    #[test]
    fn abs_min_sup_rounds_up() {
        let cfg = MiningConfig::with_min_sup(0.34);
        assert_eq!(cfg.abs_min_sup(10), 4);
        assert_eq!(cfg.abs_min_sup(0), 1);
    }

    #[test]
    fn deterministic_output_order() {
        let cfg = MiningConfig::with_min_sup(0.3);
        let a = mine_features(&sample(), &cfg).unwrap();
        let b = mine_features(&sample(), &cfg).unwrap();
        assert_eq!(a, b);
        // descending support
        for w in a.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }
}
