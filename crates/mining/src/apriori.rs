//! The Apriori algorithm (Agrawal & Srikant, VLDB 1994) — the classic
//! level-wise baseline, kept for the feature-generation ablation benchmark
//! and as a third independent miner for cross-checking.

use crate::anytime::{self, Mined, StopReason};
use crate::{MineOptions, MiningError, RawPattern};
use dfp_data::transactions::{contains_sorted, Item, TransactionSet};
use std::collections::HashMap;

/// Mines all frequent itemsets level-wise: candidates of size `k` are joins
/// of frequent `(k−1)`-sets sharing a `(k−2)`-prefix, pruned by the Apriori
/// property, then counted with one database scan per level.
pub fn mine(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Vec<RawPattern>, MiningError> {
    anytime::strict(mine_anytime(ts, min_sup, opts)?, opts, "mining.apriori")
}

/// Anytime variant of [`mine`]: the pattern budget and deadline stop the
/// level-wise search and return the patterns found so far instead of failing.
pub fn mine_anytime(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Mined, MiningError> {
    if min_sup == 0 {
        return Err(MiningError::ZeroMinSup);
    }
    let mut sp = dfp_obs::span("mine.apriori");
    let mut out: Vec<RawPattern> = Vec::new();
    let mut nodes = 0u64;
    let mined = match levels(ts, min_sup, opts, &mut out, &mut nodes) {
        Ok(()) => Mined::complete(out),
        Err(reason) => anytime::stopped_sequential(out, reason, opts),
    };
    dfp_obs::metrics::dfp::mine_nodes_explored().add(nodes);
    dfp_obs::metrics::dfp::mine_patterns_emitted().add(mined.patterns.len() as u64);
    sp.attr("min_sup", min_sup);
    sp.attr("candidates", nodes);
    sp.attr("patterns", mined.patterns.len());
    Ok(mined)
}

/// The level-wise loop; emits into `out` and stops on budget/deadline.
/// `nodes` tallies candidates considered (level-1 singletons plus every
/// joined candidate that survives Apriori pruning).
fn levels(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
    out: &mut Vec<RawPattern>,
    nodes: &mut u64,
) -> Result<(), StopReason> {
    // Level 1.
    let mut counts = vec![0usize; ts.n_items()];
    for tx in ts.transactions() {
        for item in tx {
            counts[item.index()] += 1;
        }
    }
    let mut level: Vec<Vec<Item>> = (0..ts.n_items())
        .filter(|&i| counts[i] >= min_sup)
        .map(|i| vec![Item(i as u32)])
        .collect();
    *nodes += ts.n_items() as u64;
    for set in &level {
        emit(set, counts[set[0].index()] as u32, opts, out)?;
    }

    let mut k = 1usize;
    while !level.is_empty() && opts.may_extend(k) {
        k += 1;
        // Join step: pairs sharing the first k-2 items.
        let mut candidates: Vec<Vec<Item>> = Vec::new();
        let prev: std::collections::HashSet<&[Item]> = level.iter().map(|s| s.as_slice()).collect();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let (a, b) = (&level[i], &level[j]);
                if a[..k - 2] != b[..k - 2] {
                    continue;
                }
                let mut cand = a.clone();
                let last = b[k - 2];
                if last <= *cand.last().expect("non-empty level set") {
                    continue;
                }
                cand.push(last);
                // Prune: every (k-1)-subset must be frequent.
                let mut ok = true;
                for drop in 0..cand.len() - 2 {
                    // subsets dropping the last two are covered by a and b;
                    // check the rest
                    let mut sub = cand.clone();
                    sub.remove(drop);
                    if !prev.contains(sub.as_slice()) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        *nodes += candidates.len() as u64;
        // Count step.
        let mut cand_counts: HashMap<&[Item], usize> =
            candidates.iter().map(|c| (c.as_slice(), 0)).collect();
        for tx in ts.transactions() {
            if tx.len() < k {
                continue;
            }
            for c in &candidates {
                if contains_sorted(tx, c) {
                    *cand_counts.get_mut(c.as_slice()).expect("candidate") += 1;
                }
            }
        }
        let next: Vec<(Vec<Item>, usize)> = candidates
            .iter()
            .filter_map(|c| {
                let n = cand_counts[c.as_slice()];
                (n >= min_sup).then(|| (c.clone(), n))
            })
            .collect();
        for (set, n) in &next {
            emit(set, *n as u32, opts, out)?;
        }
        level = next.into_iter().map(|(s, _)| s).collect();
        level.sort();
    }
    Ok(())
}

fn emit(
    items: &[Item],
    support: u32,
    opts: &MineOptions,
    out: &mut Vec<RawPattern>,
) -> Result<(), StopReason> {
    if !opts.len_ok(items.len()) {
        return Ok(());
    }
    out.push(RawPattern {
        items: items.to_vec(),
        support,
    });
    anytime::check_stop(out.len(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::sort_canonical;
    use dfp_data::schema::ClassId;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    #[test]
    fn agrees_with_eclat_and_fpgrowth() {
        let ts = db(&[
            &[0, 1, 4],
            &[1, 3],
            &[1, 2],
            &[0, 1, 3],
            &[0, 2],
            &[0, 1, 2, 3],
            &[2, 3, 4],
        ]);
        for min_sup in 1..=7 {
            let mut a = mine(&ts, min_sup, &MineOptions::default()).unwrap();
            let mut e = crate::eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap();
            let mut f = crate::fpgrowth::mine(&ts, min_sup, &MineOptions::default()).unwrap();
            sort_canonical(&mut a);
            sort_canonical(&mut e);
            sort_canonical(&mut f);
            assert_eq!(a, e, "apriori vs eclat at min_sup={min_sup}");
            assert_eq!(a, f, "apriori vs fpgrowth at min_sup={min_sup}");
        }
    }

    #[test]
    fn respects_options() {
        let ts = db(&[&[0, 1, 2], &[0, 1, 2], &[0, 2]]);
        let got = mine(
            &ts,
            2,
            &MineOptions::default().with_min_len(2).with_max_len(2),
        )
        .unwrap();
        assert!(got.iter().all(|p| p.len() == 2));
        let err = mine(&ts, 1, &MineOptions::default().with_max_patterns(1)).unwrap_err();
        assert!(matches!(err, MiningError::PatternLimitExceeded { .. }));
    }

    #[test]
    fn empty_and_trivial() {
        assert!(mine(&db(&[]), 1, &MineOptions::default())
            .unwrap()
            .is_empty());
        let ts = db(&[&[0]]);
        let got = mine(&ts, 1, &MineOptions::default()).unwrap();
        assert_eq!(got.len(), 1);
    }
}
