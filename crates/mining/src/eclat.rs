//! Vertical (tidset) depth-first frequent itemset mining — Eclat.
//!
//! Each item carries a [`RowSet`] of the transactions containing it — dense
//! or roaring-compressed per the active `DFP_BITSET` mode — and a DFS
//! extends the current prefix with items of higher id, intersecting tidsets.
//! Simple, exact, and fast at the dataset sizes of the paper's evaluation.
//! Serves as an independently-implemented cross-check for the FP-growth
//! miner (property tests assert equality of outputs).
//!
//! The candidate-extension loop writes each `prefix ∩ candidate` into a
//! per-depth scratch slot instead of cloning the prefix tidset per
//! candidate, so the dense-mode inner loop is allocation-free.

use crate::anytime::{self, Mined, StopReason};
use crate::{MineOptions, MiningError, RawPattern};
use dfp_data::rowset::RowSet;
use dfp_data::transactions::{Item, TransactionSet};

/// Mines all frequent itemsets with absolute support `>= min_sup`.
///
/// Returns patterns in DFS order (items ascending within each pattern).
/// Fails with [`MiningError::PatternLimitExceeded`] if `opts.max_patterns`
/// is hit, or [`MiningError::ZeroMinSup`] when `min_sup == 0`.
pub fn mine(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Vec<RawPattern>, MiningError> {
    anytime::strict(mine_anytime(ts, min_sup, opts)?, opts, "mining.eclat")
}

/// Anytime variant of [`mine`]: the pattern budget and deadline stop the
/// search and return the patterns found so far instead of failing.
pub fn mine_anytime(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Mined, MiningError> {
    if min_sup == 0 {
        return Err(MiningError::ZeroMinSup);
    }
    let mut sp = dfp_obs::span("mine.eclat");
    let vertical = ts.vertical_rowsets();
    let frequent: Vec<(Item, RowSet)> = vertical
        .into_iter()
        .enumerate()
        .filter_map(|(i, tids)| (tids.count_ones() >= min_sup).then_some((Item(i as u32), tids)))
        .collect();

    // One scratch tidset per DFS depth: depth `d` intersects into
    // `scratch[d]`, so extensions reuse storage instead of cloning the
    // prefix tidset for every candidate.
    let mut scratch: Vec<RowSet> = (0..frequent.len())
        .map(|_| RowSet::new_scratch(ts.len()))
        .collect();
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    let mut nodes = 0u64;
    let mined = match dfs(
        &frequent,
        min_sup,
        opts,
        &mut prefix,
        None,
        &mut scratch,
        &mut out,
        &mut nodes,
    ) {
        Ok(()) => Mined::complete(out),
        Err(reason) => anytime::stopped_sequential(out, reason, opts),
    };
    dfp_obs::metrics::dfp::mine_nodes_explored().add(nodes);
    dfp_obs::metrics::dfp::mine_patterns_emitted().add(mined.patterns.len() as u64);
    sp.attr("min_sup", min_sup);
    sp.attr("nodes", nodes);
    sp.attr("patterns", mined.patterns.len());
    Ok(mined)
}

/// DFS over extensions. `prefix_tids == None` means the empty prefix (full
/// database) so item tidsets are used directly without an extra
/// intersection; otherwise `prefix ∩ candidate` lands in `scratch[0]` and
/// the recursion continues with `scratch[1..]`.
#[allow(clippy::too_many_arguments)]
fn dfs(
    cands: &[(Item, RowSet)],
    min_sup: usize,
    opts: &MineOptions,
    prefix: &mut Vec<Item>,
    prefix_tids: Option<&RowSet>,
    scratch: &mut [RowSet],
    out: &mut Vec<RawPattern>,
    nodes: &mut u64,
) -> Result<(), StopReason> {
    for (i, (item, tids)) in cands.iter().enumerate() {
        *nodes += 1;
        let support = match prefix_tids {
            None => tids.count_ones(),
            Some(pt) => {
                let (slot, _) = scratch.split_first_mut().expect("scratch covers DFS depth");
                pt.intersect_into(tids, slot)
            }
        };
        if support < min_sup {
            continue;
        }
        prefix.push(*item);
        if opts.len_ok(prefix.len()) {
            out.push(RawPattern {
                items: prefix.clone(),
                support: support as u32,
            });
            anytime::check_stop(out.len(), opts)?;
        }
        if opts.may_extend(prefix.len()) && i + 1 < cands.len() {
            match prefix_tids {
                // Top level: the candidate's own tidset IS the new prefix
                // tidset — no copy, scratch untouched.
                None => dfs(
                    &cands[i + 1..],
                    min_sup,
                    opts,
                    prefix,
                    Some(tids),
                    scratch,
                    out,
                    nodes,
                )?,
                Some(_) => {
                    let (slot, rest) = scratch.split_first_mut().expect("scratch covers DFS depth");
                    dfs(
                        &cands[i + 1..],
                        min_sup,
                        opts,
                        prefix,
                        Some(slot),
                        rest,
                        out,
                        nodes,
                    )?;
                }
            }
        }
        prefix.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::sort_canonical;
    use dfp_data::schema::ClassId;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    /// The classic 5-transaction example database.
    fn classic() -> TransactionSet {
        db(&[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]])
    }

    #[test]
    fn known_counts_on_classic_db() {
        let mut got = mine(&classic(), 2, &MineOptions::default()).unwrap();
        sort_canonical(&mut got);
        let fmt: Vec<(Vec<u32>, u32)> = got
            .iter()
            .map(|p| (p.items.iter().map(|i| i.0).collect(), p.support))
            .collect();
        assert_eq!(
            fmt,
            vec![
                (vec![0], 3),
                (vec![1], 4),
                (vec![2], 2),
                (vec![3], 2),
                (vec![0, 1], 2),
                (vec![1, 3], 2),
            ]
        );
    }

    #[test]
    fn min_sup_one_enumerates_everything() {
        let got = mine(&classic(), 1, &MineOptions::default()).unwrap();
        // supports must match brute-force counting
        let ts = classic();
        for p in &got {
            assert_eq!(p.support as usize, ts.support(&p.items), "{:?}", p.items);
        }
    }

    #[test]
    fn max_len_caps_exploration() {
        let got = mine(&classic(), 1, &MineOptions::default().with_max_len(1)).unwrap();
        assert!(got.iter().all(|p| p.len() == 1));
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn min_len_filters_emission() {
        let got = mine(&classic(), 2, &MineOptions::default().with_min_len(2)).unwrap();
        assert!(got.iter().all(|p| p.len() >= 2));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn budget_aborts() {
        let err = mine(&classic(), 1, &MineOptions::default().with_max_patterns(3)).unwrap_err();
        assert_eq!(err, MiningError::PatternLimitExceeded { limit: 3 });
    }

    #[test]
    fn zero_min_sup_rejected() {
        assert_eq!(
            mine(&classic(), 0, &MineOptions::default()).unwrap_err(),
            MiningError::ZeroMinSup
        );
    }

    #[test]
    fn empty_database() {
        let ts = db(&[]);
        assert!(mine(&ts, 1, &MineOptions::default()).unwrap().is_empty());
    }
}
