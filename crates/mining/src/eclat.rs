//! Vertical (tidset) depth-first frequent itemset mining — Eclat.
//!
//! Each item carries a [`Bitset`] of the transactions containing it; a DFS
//! extends the current prefix with items of higher id, intersecting tidsets.
//! Simple, exact, and fast at the dataset sizes of the paper's evaluation.
//! Serves as an independently-implemented cross-check for the FP-growth
//! miner (property tests assert equality of outputs).

use crate::anytime::{self, Mined, StopReason};
use crate::{MineOptions, MiningError, RawPattern};
use dfp_data::bitset::Bitset;
use dfp_data::transactions::{Item, TransactionSet};

/// Mines all frequent itemsets with absolute support `>= min_sup`.
///
/// Returns patterns in DFS order (items ascending within each pattern).
/// Fails with [`MiningError::PatternLimitExceeded`] if `opts.max_patterns`
/// is hit, or [`MiningError::ZeroMinSup`] when `min_sup == 0`.
pub fn mine(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Vec<RawPattern>, MiningError> {
    anytime::strict(mine_anytime(ts, min_sup, opts)?, opts, "mining.eclat")
}

/// Anytime variant of [`mine`]: the pattern budget and deadline stop the
/// search and return the patterns found so far instead of failing.
pub fn mine_anytime(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Mined, MiningError> {
    if min_sup == 0 {
        return Err(MiningError::ZeroMinSup);
    }
    let mut sp = dfp_obs::span("mine.eclat");
    let vertical = ts.vertical();
    let frequent: Vec<(Item, Bitset)> = (0..ts.n_items())
        .filter_map(|i| {
            let tids = &vertical[i];
            (tids.count_ones() >= min_sup).then(|| (Item(i as u32), tids.clone()))
        })
        .collect();

    let mut out = Vec::new();
    let mut prefix = Vec::new();
    let mut nodes = 0u64;
    let mined = match dfs(
        &frequent,
        min_sup,
        opts,
        &mut prefix,
        None,
        &mut out,
        &mut nodes,
    ) {
        Ok(()) => Mined::complete(out),
        Err(reason) => anytime::stopped_sequential(out, reason, opts),
    };
    dfp_obs::metrics::dfp::mine_nodes_explored().add(nodes);
    dfp_obs::metrics::dfp::mine_patterns_emitted().add(mined.patterns.len() as u64);
    sp.attr("min_sup", min_sup);
    sp.attr("nodes", nodes);
    sp.attr("patterns", mined.patterns.len());
    Ok(mined)
}

/// DFS over extensions. `prefix_tids == None` means the empty prefix (full
/// database) so item tidsets are used directly without an extra intersection.
#[allow(clippy::too_many_arguments)]
fn dfs(
    cands: &[(Item, Bitset)],
    min_sup: usize,
    opts: &MineOptions,
    prefix: &mut Vec<Item>,
    prefix_tids: Option<&Bitset>,
    out: &mut Vec<RawPattern>,
    nodes: &mut u64,
) -> Result<(), StopReason> {
    for (i, (item, tids)) in cands.iter().enumerate() {
        *nodes += 1;
        let (ext_tids, support) = match prefix_tids {
            None => (tids.clone(), tids.count_ones()),
            Some(pt) => {
                let mut t = pt.clone();
                let n = t.intersect_with_count(tids);
                (t, n)
            }
        };
        if support < min_sup {
            continue;
        }
        prefix.push(*item);
        if opts.len_ok(prefix.len()) {
            out.push(RawPattern {
                items: prefix.clone(),
                support: support as u32,
            });
            anytime::check_stop(out.len(), opts)?;
        }
        if opts.may_extend(prefix.len()) && i + 1 < cands.len() {
            dfs(
                &cands[i + 1..],
                min_sup,
                opts,
                prefix,
                Some(&ext_tids),
                out,
                nodes,
            )?;
        }
        prefix.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::sort_canonical;
    use dfp_data::schema::ClassId;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    /// The classic 5-transaction example database.
    fn classic() -> TransactionSet {
        db(&[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]])
    }

    #[test]
    fn known_counts_on_classic_db() {
        let mut got = mine(&classic(), 2, &MineOptions::default()).unwrap();
        sort_canonical(&mut got);
        let fmt: Vec<(Vec<u32>, u32)> = got
            .iter()
            .map(|p| (p.items.iter().map(|i| i.0).collect(), p.support))
            .collect();
        assert_eq!(
            fmt,
            vec![
                (vec![0], 3),
                (vec![1], 4),
                (vec![2], 2),
                (vec![3], 2),
                (vec![0, 1], 2),
                (vec![1, 3], 2),
            ]
        );
    }

    #[test]
    fn min_sup_one_enumerates_everything() {
        let got = mine(&classic(), 1, &MineOptions::default()).unwrap();
        // supports must match brute-force counting
        let ts = classic();
        for p in &got {
            assert_eq!(p.support as usize, ts.support(&p.items), "{:?}", p.items);
        }
    }

    #[test]
    fn max_len_caps_exploration() {
        let got = mine(&classic(), 1, &MineOptions::default().with_max_len(1)).unwrap();
        assert!(got.iter().all(|p| p.len() == 1));
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn min_len_filters_emission() {
        let got = mine(&classic(), 2, &MineOptions::default().with_min_len(2)).unwrap();
        assert!(got.iter().all(|p| p.len() >= 2));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn budget_aborts() {
        let err = mine(&classic(), 1, &MineOptions::default().with_max_patterns(3)).unwrap_err();
        assert_eq!(err, MiningError::PatternLimitExceeded { limit: 3 });
    }

    #[test]
    fn zero_min_sup_rejected() {
        assert_eq!(
            mine(&classic(), 0, &MineOptions::default()).unwrap_err(),
            MiningError::ZeroMinSup
        );
    }

    #[test]
    fn empty_database() {
        let ts = db(&[]);
        assert!(mine(&ts, 1, &MineOptions::default()).unwrap().is_empty());
    }
}
