//! Adapter over the [`dfp_nodeset`] PPC-tree engine, giving it the same
//! `mine` / `mine_anytime` surface, error taxonomy, and anytime contract
//! as the other miners in this crate.
//!
//! The engine crate sits below `dfp-mining` in the dependency order and
//! carries its own limit/stop/result types; this module converts in both
//! directions. Spans (`mine.nodeset`), the `mining.nodeset` failpoint,
//! and the nodes-explored / patterns-emitted counters are produced by
//! the engine itself.

use crate::anytime::{Mined, StopReason};
use crate::{MineOptions, MiningError, RawPattern};
use dfp_data::transactions::TransactionSet;
use dfp_nodeset::{Limits, NodesetMined, Stop};

/// Mines all frequent itemsets with absolute support `>= min_sup` by
/// nodeset / DiffNodeset intersection (mode picked from data density).
///
/// Strict API: budget, deadline, and injected-fault stops are errors,
/// like every other miner's `mine`.
pub fn mine(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Vec<RawPattern>, MiningError> {
    crate::anytime::strict(mine_anytime(ts, min_sup, opts)?, opts, "mining.nodeset")
}

/// Anytime variant of [`mine`]: the pattern budget, the deadline, and an
/// armed `mining.nodeset` failpoint stop the search and return the
/// patterns found so far instead of failing. Budget stops are
/// bit-identical across thread counts (the engine merges its parallel
/// task streams in task order and truncates at the cumulative cap).
pub fn mine_anytime(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Mined, MiningError> {
    if min_sup == 0 {
        return Err(MiningError::ZeroMinSup);
    }
    let limits = Limits {
        min_len: opts.min_len,
        max_len: opts.max_len,
        max_patterns: opts.max_patterns,
        deadline: opts.deadline,
    };
    Ok(convert(dfp_nodeset::mine_anytime(ts, min_sup, &limits)))
}

fn convert(mined: NodesetMined) -> Mined {
    let patterns: Vec<RawPattern> = mined
        .patterns
        .into_iter()
        .map(|p| RawPattern {
            items: p.items,
            support: p.support,
        })
        .collect();
    Mined {
        patterns,
        complete: mined.complete,
        stopped_by: mined.stopped_by.map(|s| match s {
            Stop::PatternBudget => StopReason::PatternBudget,
            Stop::Deadline => StopReason::Deadline,
            Stop::Fault => StopReason::Fault,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::sort_canonical;
    use dfp_data::schema::ClassId;
    use dfp_data::transactions::Item;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    fn classic() -> TransactionSet {
        db(&[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]])
    }

    #[test]
    fn agrees_with_eclat() {
        for min_sup in 1..=5 {
            let mut a = mine(&classic(), min_sup, &MineOptions::default()).unwrap();
            let mut b = crate::eclat::mine(&classic(), min_sup, &MineOptions::default()).unwrap();
            sort_canonical(&mut a);
            sort_canonical(&mut b);
            assert_eq!(a, b, "min_sup={min_sup}");
        }
    }

    #[test]
    fn zero_min_sup_rejected() {
        assert_eq!(
            mine(&classic(), 0, &MineOptions::default()).unwrap_err(),
            MiningError::ZeroMinSup
        );
    }

    #[test]
    fn strict_budget_aborts() {
        let err = mine(&classic(), 1, &MineOptions::default().with_max_patterns(3)).unwrap_err();
        assert_eq!(err, MiningError::PatternLimitExceeded { limit: 3 });
    }

    #[test]
    fn anytime_budget_degrades() {
        let opts = MineOptions::default().with_max_patterns(3);
        let mined = mine_anytime(&classic(), 1, &opts).unwrap();
        assert!(!mined.complete);
        assert_eq!(mined.stopped_by, Some(StopReason::PatternBudget));
        assert_eq!(mined.patterns.len(), 3);
    }

    #[test]
    fn injected_fault_degrades_anytime_and_fails_strict() {
        dfp_fault::arm("mining.nodeset", dfp_fault::Action::Err);
        let mined = mine_anytime(&classic(), 1, &MineOptions::default()).unwrap();
        let strict = mine(&classic(), 1, &MineOptions::default());
        dfp_fault::disarm("mining.nodeset");
        assert!(!mined.complete);
        assert_eq!(mined.stopped_by, Some(StopReason::Fault));
        assert!(mined.patterns.is_empty());
        assert_eq!(strict.unwrap_err(), MiningError::Injected("mining.nodeset"));
    }
}
