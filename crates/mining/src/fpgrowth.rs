//! FP-growth: frequent itemset mining by recursive pattern growth over
//! conditional FP-trees (Han, Pei, Yin — SIGMOD 2000). This is the
//! paper-faithful miner (the paper's FPClose is its closed-set variant).
//!
//! The top level fans out across workers: each frequent item's conditional
//! tree is an independent task (the natural FP-growth task granularity —
//! subtrees share nothing but the read-only level-0 tree), and per-task
//! outputs are concatenated in the sequential processing order, so results
//! are bit-identical for any `DFP_THREADS`. Recursion below the top level
//! stays sequential inside its task.

use crate::anytime::{self, Mined, StopReason};
use crate::fptree::FpTree;
use crate::{MineOptions, MiningError, RawPattern};
use dfp_data::transactions::{Item, TransactionSet};

/// Mines all frequent itemsets with absolute support `>= min_sup`.
///
/// Output order is implementation-defined; supports are exact. Fails with
/// [`MiningError::PatternLimitExceeded`] when `opts.max_patterns` is hit and
/// [`MiningError::ZeroMinSup`] when `min_sup == 0`.
pub fn mine(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Vec<RawPattern>, MiningError> {
    anytime::strict(mine_anytime(ts, min_sup, opts)?, opts, "mining.growth")
}

/// Anytime variant of [`mine`]: the pattern budget, the deadline, and an
/// armed `mining.growth` failpoint stop the search and return the patterns
/// found so far instead of failing.
pub fn mine_anytime(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Mined, MiningError> {
    if min_sup == 0 {
        return Err(MiningError::ZeroMinSup);
    }
    let mut sp = dfp_obs::span("mine.fpgrowth");
    if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("mining.growth") {
        return Ok(Mined::stopped(Vec::new(), StopReason::Fault));
    }
    let db: Vec<(Vec<u32>, u64)> = ts
        .transactions()
        .iter()
        .map(|tx| (tx.iter().map(|i| i.0).collect(), 1u64))
        .collect();
    let Some(level) = build_level(&db, ts.n_items(), min_sup as u64) else {
        return Ok(Mined::complete(Vec::new()));
    };

    // One task per top-level frequent item, in the sequential processing
    // order (least frequent first — bottom of the tree upward). A stopped
    // task keeps its best-so-far output; the merge below truncates the
    // concatenated stream at the cumulative budget, so the surviving prefix
    // is identical to a sequential run's.
    let locals: Vec<u32> = (0..level.frequent.len() as u32).rev().collect();
    let results: Vec<(Vec<RawPattern>, Option<StopReason>, u64)> =
        dfp_par::par_map(&locals, |&local| {
            let mut task_out = Vec::new();
            let mut suffix: Vec<Item> = Vec::new();
            // Node tallies stay task-local (one plain u64 bump per DFS node)
            // and flush into the global counter with a single atomic add
            // below, keeping the recursion free of shared-state traffic.
            let mut nodes = 0u64;
            let stop = grow_item(
                &level,
                local,
                ts.n_items(),
                min_sup as u64,
                opts,
                &mut suffix,
                &mut task_out,
                &mut nodes,
            )
            .err();
            (task_out, stop, nodes)
        });
    let nodes: u64 = results.iter().map(|(_, _, n)| n).sum();
    let merged = anytime::merge_task_outputs(
        Vec::new(),
        results
            .into_iter()
            .map(|(out, stop, _)| (out, stop))
            .collect(),
        opts,
    );
    dfp_obs::metrics::dfp::mine_nodes_explored().add(nodes);
    dfp_obs::metrics::dfp::mine_patterns_emitted().add(merged.patterns.len() as u64);
    sp.attr("min_sup", min_sup);
    sp.attr("nodes", nodes);
    sp.attr("patterns", merged.patterns.len());
    Ok(merged)
}

/// One prepared FP-growth level: the frequent items of a (conditional)
/// database in descending-frequency order and the FP-tree over them.
struct Level {
    frequent: Vec<u32>,
    tree: FpTree,
}

/// Counts items in the (conditional) database and builds the FP-tree over
/// the frequent ones; `None` when nothing is frequent.
fn build_level(db: &[(Vec<u32>, u64)], n_items: usize, min_sup: u64) -> Option<Level> {
    // Weighted item counts in this conditional database.
    let mut counts = vec![0u64; n_items];
    for (items, w) in db {
        for &i in items {
            counts[i as usize] += w;
        }
    }
    // Frequent items, descending frequency (ties by ascending id) → local ids.
    let mut frequent: Vec<u32> = (0..n_items as u32)
        .filter(|&i| counts[i as usize] >= min_sup)
        .collect();
    if frequent.is_empty() {
        return None;
    }
    frequent.sort_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b)));
    let mut local_of = vec![u32::MAX; n_items];
    for (local, &global) in frequent.iter().enumerate() {
        local_of[global as usize] = local as u32;
    }

    // Project transactions onto frequent items, reordered by local id.
    let projected: Vec<(Vec<u32>, u64)> = db
        .iter()
        .filter_map(|(items, w)| {
            let mut loc: Vec<u32> = items
                .iter()
                .filter_map(|&i| {
                    let l = local_of[i as usize];
                    (l != u32::MAX).then_some(l)
                })
                .collect();
            if loc.is_empty() {
                return None;
            }
            loc.sort_unstable();
            Some((loc, *w))
        })
        .collect();
    let tree = FpTree::build(&projected, frequent.len());
    Some(Level { frequent, tree })
}

/// Emits `suffix ∪ {item}` and recurses on the item's conditional pattern
/// base — the per-item body of one FP-growth level. `nodes` tallies DFS
/// nodes (one per invocation) for the `dfp_mine_nodes_explored_total`
/// counter.
#[allow(clippy::too_many_arguments)]
fn grow_item(
    level: &Level,
    local: u32,
    n_items: usize,
    min_sup: u64,
    opts: &MineOptions,
    suffix: &mut Vec<Item>,
    out: &mut Vec<RawPattern>,
    nodes: &mut u64,
) -> Result<(), StopReason> {
    *nodes += 1;
    let global = level.frequent[local as usize];
    let support = level.tree.item_count(local);
    suffix.push(Item(global));
    if opts.len_ok(suffix.len()) {
        let mut items = suffix.clone();
        items.sort_unstable();
        out.push(RawPattern {
            items,
            support: support as u32,
        });
        anytime::check_stop(out.len(), opts)?;
    }
    if opts.may_extend(suffix.len()) {
        // Conditional pattern base in *global* ids for the recursion.
        let base: Vec<(Vec<u32>, u64)> = level
            .tree
            .prefix_paths(local)
            .into_iter()
            .map(|(path, w)| {
                (
                    path.iter()
                        .map(|&l| level.frequent[l as usize])
                        .collect::<Vec<u32>>(),
                    w,
                )
            })
            .collect();
        if !base.is_empty() {
            grow(&base, n_items, min_sup, opts, suffix, out, nodes)?;
        }
    }
    suffix.pop();
    Ok(())
}

/// One sequential FP-growth level below the parallel top: prepare the
/// conditional level and process every frequent item in order.
fn grow(
    db: &[(Vec<u32>, u64)],
    n_items: usize,
    min_sup: u64,
    opts: &MineOptions,
    suffix: &mut Vec<Item>,
    out: &mut Vec<RawPattern>,
    nodes: &mut u64,
) -> Result<(), StopReason> {
    let Some(level) = build_level(db, n_items, min_sup) else {
        return Ok(());
    };
    // Process items from least frequent (bottom of the tree) upward.
    for local in (0..level.frequent.len() as u32).rev() {
        grow_item(&level, local, n_items, min_sup, opts, suffix, out, nodes)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::sort_canonical;
    use dfp_data::schema::ClassId;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    fn classic() -> TransactionSet {
        db(&[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]])
    }

    #[test]
    fn matches_known_counts() {
        let mut got = mine(&classic(), 2, &MineOptions::default()).unwrap();
        sort_canonical(&mut got);
        let fmt: Vec<(Vec<u32>, u32)> = got
            .iter()
            .map(|p| (p.items.iter().map(|i| i.0).collect(), p.support))
            .collect();
        assert_eq!(
            fmt,
            vec![
                (vec![0], 3),
                (vec![1], 4),
                (vec![2], 2),
                (vec![3], 2),
                (vec![0, 1], 2),
                (vec![1, 3], 2),
            ]
        );
    }

    #[test]
    fn agrees_with_eclat_on_classic() {
        for min_sup in 1..=5 {
            let mut a = mine(&classic(), min_sup, &MineOptions::default()).unwrap();
            let mut b = crate::eclat::mine(&classic(), min_sup, &MineOptions::default()).unwrap();
            sort_canonical(&mut a);
            sort_canonical(&mut b);
            assert_eq!(a, b, "min_sup={min_sup}");
        }
    }

    #[test]
    fn exact_supports_at_min_sup_one() {
        let ts = classic();
        let got = mine(&ts, 1, &MineOptions::default()).unwrap();
        for p in &got {
            assert_eq!(p.support as usize, ts.support(&p.items), "{:?}", p.items);
        }
        // 5 transactions over 5 items: count distinct itemsets by brute force
        let brute = crate::reference::mine_brute_force(&ts, 1, None);
        assert_eq!(got.len(), brute.len());
    }

    #[test]
    fn length_options_respected() {
        let got = mine(
            &classic(),
            1,
            &MineOptions::default().with_min_len(2).with_max_len(2),
        )
        .unwrap();
        assert!(got.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn budget_aborts() {
        let err = mine(&classic(), 1, &MineOptions::default().with_max_patterns(2)).unwrap_err();
        assert_eq!(err, MiningError::PatternLimitExceeded { limit: 2 });
    }

    #[test]
    fn empty_database_yields_nothing() {
        let ts = db(&[]);
        assert!(mine(&ts, 1, &MineOptions::default()).unwrap().is_empty());
    }
}
