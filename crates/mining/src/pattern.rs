//! Mined pattern types.
//!
//! Miners first emit [`RawPattern`]s (itemset + global support); the
//! feature-generation step ([`crate::per_class`]) then attaches per-class
//! supports, producing [`MinedPattern`]s — the unit the measures, the MMRFS
//! selector and the classifiers all consume.

use dfp_data::schema::ClassId;
use dfp_data::transactions::Item;

/// An itemset plus its absolute support in the database it was mined from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawPattern {
    /// Items, sorted ascending, no duplicates.
    pub items: Vec<Item>,
    /// Absolute support.
    pub support: u32,
}

impl RawPattern {
    /// Pattern length `|α|`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A pattern with global and per-class absolute supports over the full
/// training database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedPattern {
    /// Items, sorted ascending, no duplicates.
    pub items: Vec<Item>,
    /// Absolute support over the whole database, `|D_α|`.
    pub support: u32,
    /// `class_supports[c]` = number of covering transactions with label `c`.
    pub class_supports: Vec<u32>,
}

impl MinedPattern {
    /// Pattern length `|α|`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Relative support `θ = |D_α| / |D|`.
    pub fn rel_support(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.support as f64 / n as f64
        }
    }

    /// The class with the largest support among covering transactions
    /// (ties broken toward the smaller class id).
    pub fn majority_class(&self) -> ClassId {
        let mut best = 0usize;
        for (c, &s) in self.class_supports.iter().enumerate() {
            if s > self.class_supports[best] {
                best = c;
            }
        }
        ClassId(best as u32)
    }

    /// Rule confidence `P(c | α)`; `0.0` if the pattern covers nothing.
    pub fn confidence(&self, class: ClassId) -> f64 {
        if self.support == 0 {
            return 0.0;
        }
        self.class_supports[class.index()] as f64 / self.support as f64
    }

    /// Confidence of the majority class.
    pub fn max_confidence(&self) -> f64 {
        self.confidence(self.majority_class())
    }
}

/// Sorts patterns canonically: by length, then lexicographically by items —
/// handy for deterministic test assertions and stable output.
pub fn sort_canonical(patterns: &mut [RawPattern]) {
    patterns.sort_by(|a, b| {
        a.items
            .len()
            .cmp(&b.items.len())
            .then_with(|| a.items.cmp(&b.items))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp(items: &[u32], class_supports: &[u32]) -> MinedPattern {
        MinedPattern {
            items: items.iter().map(|&i| Item(i)).collect(),
            support: class_supports.iter().sum(),
            class_supports: class_supports.to_vec(),
        }
    }

    #[test]
    fn majority_and_confidence() {
        let p = mp(&[1, 2], &[3, 7]);
        assert_eq!(p.majority_class(), ClassId(1));
        assert!((p.confidence(ClassId(1)) - 0.7).abs() < 1e-12);
        assert!((p.max_confidence() - 0.7).abs() < 1e-12);
        assert!((p.rel_support(20) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn majority_tie_prefers_lower_class() {
        let p = mp(&[1], &[5, 5]);
        assert_eq!(p.majority_class(), ClassId(0));
    }

    #[test]
    fn zero_support_confidence() {
        let p = mp(&[1], &[0, 0]);
        assert_eq!(p.confidence(ClassId(0)), 0.0);
        assert_eq!(p.rel_support(0), 0.0);
    }

    #[test]
    fn canonical_sort() {
        let mut v = vec![
            RawPattern {
                items: vec![Item(2), Item(3)],
                support: 1,
            },
            RawPattern {
                items: vec![Item(9)],
                support: 1,
            },
            RawPattern {
                items: vec![Item(1), Item(5)],
                support: 1,
            },
        ];
        sort_canonical(&mut v);
        assert_eq!(v[0].items, vec![Item(9)]);
        assert_eq!(v[1].items, vec![Item(1), Item(5)]);
        assert_eq!(v[2].items, vec![Item(2), Item(3)]);
    }
}
