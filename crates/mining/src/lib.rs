//! # dfp-mining — frequent and closed itemset mining
//!
//! The feature-generation substrate of the framework (paper §3, step 1).
//! The paper uses **FPClose** to generate *closed* frequent itemsets; this
//! crate provides:
//!
//! * [`fptree`] / [`fpgrowth`] — an FP-tree and the FP-growth algorithm,
//!   the paper-faithful pattern-growth miner;
//! * [`eclat`] — a vertical (tidset-bitset) DFS miner used as the workhorse
//!   and as an independent implementation for cross-checking;
//! * [`closed`] — FPClose/CHARM-style **closed** itemset mining: DFS with
//!   full-support closure merging plus an exact subsumption post-filter;
//! * [`apriori`] — the classic level-wise baseline (ablation + testing);
//! * [`nodeset`] — PPC-tree (Diff)Nodeset mining (the `dfp-nodeset`
//!   engine behind a uniform adapter): the fastest backend on dense data;
//! * [`count`] — counting-only enumeration with an abort cap, used by the
//!   scalability tables to reproduce the paper's "min_sup = 1 cannot
//!   complete" rows;
//! * [`per_class`] — the paper's feature-generation step: partition the
//!   database by class, mine each partition with `min_sup`, merge, and
//!   recount global/per-class supports;
//! * [`mod@reference`] — a brute-force miner used as ground truth in tests;
//! * [`sequence`] — PrefixSpan sequential-pattern mining, the paper's §6
//!   extension direction, with a transform into the framework's feature
//!   matrices;
//! * [`top_k`] — top-k closed mining (the §5 related-work strategy that
//!   replaces an up-front `min_sup` with a result-size budget).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anytime;
pub mod apriori;
pub mod closed;
pub mod count;
pub mod eclat;
pub mod fpgrowth;
pub mod fptree;
pub mod memo;
pub mod nodeset;
pub mod pattern;
pub mod per_class;
pub mod reference;
pub mod sequence;
pub mod top_k;

pub use anytime::{Mined, StopReason};
pub use pattern::{MinedPattern, RawPattern};
pub use per_class::{mine_features, mine_features_anytime, MinedFeatures, MiningConfig};

/// Re-export: which algorithm feature generation runs.
pub use per_class::MinerKind;

/// Errors produced by the miners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiningError {
    /// The miner exceeded its configured pattern budget
    /// (used to emulate the paper's "cannot complete in days" rows).
    PatternLimitExceeded {
        /// The configured cap that was hit.
        limit: u64,
    },
    /// The miner ran past its configured deadline (strict mode only — the
    /// anytime entry points return best-so-far results instead).
    DeadlineExceeded,
    /// A `dfp-fault` failpoint injected a failure at the named site.
    Injected(&'static str),
    /// `min_sup` of zero is meaningless for absolute thresholds.
    ZeroMinSup,
}

impl std::fmt::Display for MiningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiningError::PatternLimitExceeded { limit } => {
                write!(f, "pattern budget of {limit} exceeded")
            }
            MiningError::DeadlineExceeded => write!(f, "mining deadline exceeded"),
            MiningError::Injected(site) => {
                write!(f, "fault injected at failpoint '{site}'")
            }
            MiningError::ZeroMinSup => write!(f, "absolute min_sup must be at least 1"),
        }
    }
}

impl std::error::Error for MiningError {}

/// Options shared by all miners.
#[derive(Debug, Clone)]
pub struct MineOptions {
    /// Minimum pattern length to *emit* (shorter prefixes are still explored).
    pub min_len: usize,
    /// Maximum pattern length to explore; `None` = unbounded.
    pub max_len: Option<usize>,
    /// Abort once this many patterns have been emitted; `None` = unbounded.
    pub max_patterns: Option<u64>,
    /// Stop searching at this instant; `None` = unbounded. Strict miners
    /// fail with [`MiningError::DeadlineExceeded`]; anytime miners return
    /// best-so-far.
    pub deadline: Option<std::time::Instant>,
}

impl Default for MineOptions {
    fn default() -> Self {
        MineOptions {
            min_len: 1,
            max_len: None,
            max_patterns: None,
            deadline: None,
        }
    }
}

impl MineOptions {
    /// Options with a maximum pattern length.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }

    /// Options with a pattern budget.
    pub fn with_max_patterns(mut self, cap: u64) -> Self {
        self.max_patterns = Some(cap);
        self
    }

    /// Options with a minimum emitted length.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len;
        self
    }

    /// Options with an absolute search deadline.
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Options with a deadline of `budget` from now.
    pub fn with_time_budget(self, budget: std::time::Duration) -> Self {
        self.with_deadline(std::time::Instant::now() + budget)
    }

    pub(crate) fn len_ok(&self, len: usize) -> bool {
        len >= self.min_len
    }

    pub(crate) fn may_extend(&self, len: usize) -> bool {
        self.max_len.is_none_or(|m| len < m)
    }
}
