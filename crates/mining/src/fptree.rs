//! The FP-tree: a prefix-tree of frequency-ordered transactions with header
//! links (Han, Pei, Yin — SIGMOD 2000).
//!
//! Items are *local* dense ids in descending-frequency order (`0` = most
//! frequent), assigned by the caller ([`crate::fpgrowth`]). Counts are `u64`
//! because conditional pattern bases carry accumulated weights.

/// One FP-tree node.
#[derive(Debug, Clone)]
pub struct FpNode {
    /// Local item id (`u32::MAX` for the root).
    pub item: u32,
    /// Accumulated count.
    pub count: u64,
    /// Parent node index (`0` = root; the root's parent is itself).
    pub parent: u32,
    /// First child index, `u32::MAX` if none.
    child: u32,
    /// Next sibling index, `u32::MAX` if none.
    sibling: u32,
    /// Next node with the same item (header chain), `u32::MAX` if none.
    hlink: u32,
}

const NONE: u32 = u32::MAX;

/// Per-item header entry: total count and the head of the node chain.
#[derive(Debug, Clone)]
pub struct Header {
    /// Total count of the item in the tree.
    pub count: u64,
    first: u32,
}

/// An FP-tree over `n_local` items.
#[derive(Debug, Clone)]
pub struct FpTree {
    nodes: Vec<FpNode>,
    headers: Vec<Header>,
}

impl FpTree {
    /// Creates an empty tree over `n_local` items.
    pub fn new(n_local: usize) -> Self {
        FpTree {
            nodes: vec![FpNode {
                item: NONE,
                count: 0,
                parent: 0,
                child: NONE,
                sibling: NONE,
                hlink: NONE,
            }],
            headers: vec![
                Header {
                    count: 0,
                    first: NONE
                };
                n_local
            ],
        }
    }

    /// Builds a tree from weighted transactions whose items are local ids
    /// sorted ascending (i.e. descending frequency first).
    pub fn build(transactions: &[(Vec<u32>, u64)], n_local: usize) -> Self {
        let mut tree = FpTree::new(n_local);
        for (items, weight) in transactions {
            tree.insert(items, *weight);
        }
        tree
    }

    /// Inserts one transaction (local ids, ascending) with a weight.
    ///
    /// # Panics
    /// Panics if the items are not strictly ascending or out of range.
    pub fn insert(&mut self, items: &[u32], weight: u64) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "items must ascend");
        let mut cur = 0u32; // root
        for &item in items {
            assert!((item as usize) < self.headers.len(), "item out of range");
            self.headers[item as usize].count += weight;
            // Find or create the child labelled `item`.
            let mut child = self.nodes[cur as usize].child;
            let mut found = NONE;
            while child != NONE {
                if self.nodes[child as usize].item == item {
                    found = child;
                    break;
                }
                child = self.nodes[child as usize].sibling;
            }
            cur = if found != NONE {
                self.nodes[found as usize].count += weight;
                found
            } else {
                let idx = self.nodes.len() as u32;
                let head = &mut self.headers[item as usize];
                let hlink = head.first;
                head.first = idx;
                let first_child = self.nodes[cur as usize].child;
                self.nodes.push(FpNode {
                    item,
                    count: weight,
                    parent: cur,
                    child: NONE,
                    sibling: first_child,
                    hlink,
                });
                self.nodes[cur as usize].child = idx;
                idx
            };
        }
    }

    /// Number of local items.
    pub fn n_items(&self) -> usize {
        self.headers.len()
    }

    /// Total count of a local item in the tree.
    pub fn item_count(&self, item: u32) -> u64 {
        self.headers[item as usize].count
    }

    /// Number of nodes, excluding the root.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len() - 1
    }

    /// `true` if the tree consists of a single chain from the root.
    pub fn is_single_path(&self) -> bool {
        let mut cur = 0u32;
        loop {
            let child = self.nodes[cur as usize].child;
            if child == NONE {
                return true;
            }
            if self.nodes[child as usize].sibling != NONE {
                return false;
            }
            cur = child;
        }
    }

    /// The conditional pattern base of `item`: for every node labelled
    /// `item`, the path of (strictly more frequent) items from its parent up
    /// to the root, weighted by the node's count. Paths come back with items
    /// ascending.
    pub fn prefix_paths(&self, item: u32) -> Vec<(Vec<u32>, u64)> {
        let mut paths = Vec::new();
        let mut node = self.headers[item as usize].first;
        while node != NONE {
            let n = &self.nodes[node as usize];
            let mut path = Vec::new();
            let mut cur = n.parent;
            while cur != 0 {
                path.push(self.nodes[cur as usize].item);
                cur = self.nodes[cur as usize].parent;
            }
            if !path.is_empty() {
                path.reverse();
                paths.push((path, n.count));
            }
            node = n.hlink;
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_prefixes_merge() {
        // Transactions (local ids): {0,1,2}, {0,1}, {0,3}
        let t = FpTree::build(&[(vec![0, 1, 2], 1), (vec![0, 1], 1), (vec![0, 3], 1)], 4);
        // nodes: 0,1,2,3 labelled items — prefix {0,1} shared
        assert_eq!(t.n_nodes(), 4);
        assert_eq!(t.item_count(0), 3);
        assert_eq!(t.item_count(1), 2);
        assert_eq!(t.item_count(2), 1);
        assert_eq!(t.item_count(3), 1);
    }

    #[test]
    fn weighted_insert() {
        let t = FpTree::build(&[(vec![0, 1], 5), (vec![0], 2)], 2);
        assert_eq!(t.item_count(0), 7);
        assert_eq!(t.item_count(1), 5);
    }

    #[test]
    fn prefix_paths_weighted() {
        let t = FpTree::build(&[(vec![0, 1, 2], 2), (vec![1, 2], 3), (vec![2], 1)], 3);
        let mut paths = t.prefix_paths(2);
        paths.sort();
        assert_eq!(paths, vec![(vec![0, 1], 2), (vec![1], 3)]);
        // item 0 sits directly under the root: no prefix path
        assert!(t.prefix_paths(0).is_empty());
    }

    #[test]
    fn single_path_detection() {
        let single = FpTree::build(&[(vec![0, 1, 2], 1), (vec![0, 1], 4)], 3);
        assert!(single.is_single_path());
        let branched = FpTree::build(&[(vec![0, 1], 1), (vec![0, 2], 1)], 3);
        assert!(!branched.is_single_path());
        assert!(FpTree::new(3).is_single_path());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item_panics() {
        FpTree::new(2).insert(&[5], 1);
    }
}
