//! Top-k closed pattern mining — the alternative feature-generation
//! strategy of the paper's related work (§5 discusses top-k covering rule
//! groups, Cong et al. SIGMOD 2005): instead of fixing `min_sup` ahead of
//! time, ask for the `k` highest-support closed patterns and let the
//! support threshold *rise dynamically* as better patterns are found.
//!
//! Implemented as iterative-deepening over the closed miner: start at a
//! high support, halve until at least `k` closed patterns exist, then keep
//! the top `k` (ties kept deterministically by canonical order). For the
//! database sizes of this paper the re-mining cost is dwarfed by the final
//! (lowest-threshold) pass, so the loop costs ~2× the direct mining at the
//! final threshold — without needing the threshold in advance.

use crate::closed::mine_closed;
use crate::pattern::sort_canonical;
use crate::{MineOptions, MiningError, RawPattern};
use dfp_data::transactions::TransactionSet;

/// Mines the `k` highest-support **closed** patterns (length filters from
/// `opts` apply). Returns fewer than `k` when the database has fewer closed
/// patterns. The result is sorted by descending support, canonical order
/// within ties.
pub fn mine_top_k_closed(
    ts: &TransactionSet,
    k: usize,
    opts: &MineOptions,
) -> Result<Vec<RawPattern>, MiningError> {
    if k == 0 || ts.is_empty() {
        return Ok(Vec::new());
    }
    let mut min_sup = ts.len();
    loop {
        let mut found = mine_closed(ts, min_sup, opts)?;
        if found.len() >= k || min_sup == 1 {
            sort_canonical(&mut found);
            found.sort_by_key(|p| std::cmp::Reverse(p.support));
            found.truncate(k);
            return Ok(found);
        }
        min_sup = (min_sup / 2).max(1);
    }
}

/// The support of the `k`-th best closed pattern — i.e. the `min_sup` that
/// top-k mining effectively resolves to (useful for reporting).
pub fn top_k_support_threshold(
    ts: &TransactionSet,
    k: usize,
    opts: &MineOptions,
) -> Result<Option<usize>, MiningError> {
    let top = mine_top_k_closed(ts, k, opts)?;
    Ok(top.last().map(|p| p.support as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;
    use dfp_data::transactions::Item;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    fn classic() -> TransactionSet {
        db(&[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2], &[0, 1]])
    }

    #[test]
    fn top_k_matches_full_mining_prefix() {
        let ts = classic();
        let all = {
            let mut v = mine_closed(&ts, 1, &MineOptions::default()).unwrap();
            sort_canonical(&mut v);
            v.sort_by_key(|p| std::cmp::Reverse(p.support));
            v
        };
        for k in 1..=all.len() + 2 {
            let top = mine_top_k_closed(&ts, k, &MineOptions::default()).unwrap();
            assert_eq!(top.len(), k.min(all.len()), "k={k}");
            // supports must match the k best of the full enumeration
            let want: Vec<u32> = all.iter().take(k).map(|p| p.support).collect();
            let got: Vec<u32> = top.iter().map(|p| p.support).collect();
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn results_sorted_by_support() {
        let top = mine_top_k_closed(&classic(), 5, &MineOptions::default()).unwrap();
        for w in top.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn k_zero_and_empty_db() {
        assert!(mine_top_k_closed(&classic(), 0, &MineOptions::default())
            .unwrap()
            .is_empty());
        assert!(mine_top_k_closed(&db(&[]), 3, &MineOptions::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn effective_threshold_reported() {
        let ts = classic();
        let thr = top_k_support_threshold(&ts, 3, &MineOptions::default())
            .unwrap()
            .unwrap();
        let top = mine_top_k_closed(&ts, 3, &MineOptions::default()).unwrap();
        assert_eq!(thr, top.last().unwrap().support as usize);
        // mining at that threshold yields at least 3 closed patterns
        let at = mine_closed(&ts, thr, &MineOptions::default()).unwrap();
        assert!(at.len() >= 3);
    }

    #[test]
    fn min_len_respected() {
        let top =
            mine_top_k_closed(&classic(), 4, &MineOptions::default().with_min_len(2)).unwrap();
        assert!(top.iter().all(|p| p.len() >= 2));
    }

    #[test]
    fn deterministic() {
        let a = mine_top_k_closed(&classic(), 4, &MineOptions::default()).unwrap();
        let b = mine_top_k_closed(&classic(), 4, &MineOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
