//! Brute-force reference miners — ground truth for unit and property tests.
//!
//! Exponential in the number of items; only use on small inputs.

use crate::{pattern::sort_canonical, RawPattern};
use dfp_data::transactions::{Item, TransactionSet};

/// Enumerates **all** frequent itemsets by DFS over the item universe,
/// counting each candidate's support with a linear scan. Returns patterns in
/// canonical order (length, then lexicographic).
pub fn mine_brute_force(
    ts: &TransactionSet,
    min_sup: usize,
    max_len: Option<usize>,
) -> Vec<RawPattern> {
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    brute_dfs(ts, min_sup, max_len, 0, &mut prefix, &mut out);
    sort_canonical(&mut out);
    out
}

fn brute_dfs(
    ts: &TransactionSet,
    min_sup: usize,
    max_len: Option<usize>,
    start: usize,
    prefix: &mut Vec<Item>,
    out: &mut Vec<RawPattern>,
) {
    if max_len.is_some_and(|m| prefix.len() >= m) {
        return;
    }
    for i in start..ts.n_items() {
        prefix.push(Item(i as u32));
        let support = ts.support(prefix);
        if support >= min_sup && min_sup > 0 {
            out.push(RawPattern {
                items: prefix.clone(),
                support: support as u32,
            });
            brute_dfs(ts, min_sup, max_len, i + 1, prefix, out);
        }
        prefix.pop();
    }
}

/// Filters a complete frequent-set listing down to the **closed** ones:
/// a pattern is closed iff no strict superset has the same support.
/// Quadratic; test use only. Returns canonical order.
pub fn closed_filter_brute_force(mut patterns: Vec<RawPattern>) -> Vec<RawPattern> {
    let closed: Vec<RawPattern> = patterns
        .iter()
        .filter(|p| {
            !patterns.iter().any(|q| {
                q.support == p.support
                    && q.items.len() > p.items.len()
                    && is_subset(&p.items, &q.items)
            })
        })
        .cloned()
        .collect();
    patterns = closed;
    sort_canonical(&mut patterns);
    patterns
}

/// All closed frequent itemsets by brute force.
pub fn mine_closed_brute_force(
    ts: &TransactionSet,
    min_sup: usize,
    max_len: Option<usize>,
) -> Vec<RawPattern> {
    // NOTE: with a `max_len` cap the closedness test is *relative to the
    // capped universe*, matching what the capped closed miner produces.
    closed_filter_brute_force(mine_brute_force(ts, min_sup, max_len))
}

fn is_subset(a: &[Item], b: &[Item]) -> bool {
    dfp_data::transactions::contains_sorted(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    #[test]
    fn brute_force_counts() {
        let ts = db(&[&[0, 1], &[0, 1], &[0, 2]]);
        let got = mine_brute_force(&ts, 2, None);
        let fmt: Vec<(Vec<u32>, u32)> = got
            .iter()
            .map(|p| (p.items.iter().map(|i| i.0).collect(), p.support))
            .collect();
        assert_eq!(fmt, vec![(vec![0], 3), (vec![1], 2), (vec![0, 1], 2)]);
    }

    #[test]
    fn closed_filter() {
        // {0} sup 3 closed; {1} sup 2 NOT closed (subset of {0,1} sup 2);
        // {0,1} sup 2 closed.
        let ts = db(&[&[0, 1], &[0, 1], &[0, 2]]);
        let got = mine_closed_brute_force(&ts, 2, None);
        let fmt: Vec<Vec<u32>> = got
            .iter()
            .map(|p| p.items.iter().map(|i| i.0).collect())
            .collect();
        assert_eq!(fmt, vec![vec![0], vec![0, 1]]);
    }

    #[test]
    fn closed_count_classic_example() {
        // Every transaction identical → exactly one closed pattern (the full set).
        let ts = db(&[&[0, 1, 2], &[0, 1, 2], &[0, 1, 2]]);
        let got = mine_closed_brute_force(&ts, 1, None);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].items.len(), 3);
        assert_eq!(got[0].support, 3);
    }
}
