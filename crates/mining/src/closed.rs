//! Closed frequent itemset mining (FPClose / CHARM style).
//!
//! The paper mines **closed** patterns ("we use the closed frequent patterns
//! as features instead of frequent ones […] since for a closed pattern α and
//! its non-closed sub-pattern β, β is completely redundant w.r.t. α", §3.3).
//!
//! Strategy: a vertical DFS in which every extension item whose conditional
//! tidset equals the prefix tidset is *merged into the prefix closure*
//! (it occurs in every covering transaction, so no strictly-smaller pattern
//! omitting it can be closed). Each DFS node emits one candidate — the
//! merged prefix — and an exact subsumption **post-filter** removes the
//! remaining non-closed candidates (a candidate is non-closed iff some other
//! candidate is a strict superset with equal support; the closure of every
//! frequent set is provably among the candidates, see the module tests which
//! verify equality against a brute-force definition of closedness).

use crate::anytime::{self, Mined, StopReason};
use crate::{MineOptions, MiningError, RawPattern};
use dfp_data::bitset::Bitset;
use dfp_data::transactions::{Item, TransactionSet};
use std::collections::HashMap;

/// Mines all **closed** itemsets with absolute support `>= min_sup`.
///
/// `opts.min_len` filters emitted patterns; `opts.max_len` bounds the DFS
/// depth (note: closure merging can still produce patterns longer than
/// `max_len`; with a cap, output closedness is relative to the explored
/// universe). `opts.max_patterns` bounds the *candidate* count and aborts
/// with [`MiningError::PatternLimitExceeded`].
pub fn mine_closed(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Vec<RawPattern>, MiningError> {
    anytime::strict(
        mine_closed_anytime(ts, min_sup, opts)?,
        opts,
        "mining.closed",
    )
}

/// Anytime variant of [`mine_closed`]: the budget, the deadline, and an
/// armed `mining.closed` failpoint stop the DFS and run the closedness
/// post-filter on the candidates found so far. A truncated candidate stream
/// still yields exact supports; closedness is then relative to the explored
/// part of the search space.
pub fn mine_closed_anytime(
    ts: &TransactionSet,
    min_sup: usize,
    opts: &MineOptions,
) -> Result<Mined, MiningError> {
    if min_sup == 0 {
        return Err(MiningError::ZeroMinSup);
    }
    let mut sp = dfp_obs::span("mine.closed");
    if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("mining.closed") {
        return Ok(Mined::stopped(Vec::new(), StopReason::Fault));
    }
    let vertical = ts.vertical();
    let cands: Vec<(Item, Bitset)> = (0..ts.n_items())
        .filter_map(|i| {
            let tids = &vertical[i];
            (tids.count_ones() >= min_sup).then(|| (Item(i as u32), tids.clone()))
        })
        .collect();

    // The root DFS node, expanded inline so each top-level branch becomes an
    // independent worker task (candidate generation below any branch only
    // touches that branch's tidsets, so branches share nothing mutable).
    // Task outputs are concatenated in the sequential branch order, keeping
    // the candidate stream — and therefore the result — bit-identical to a
    // single-threaded run.
    let prefix_support = ts.len();
    // Stats stay plain u64s threaded through the recursion; they flush into
    // the global counters with one atomic add each at the end of the call.
    let mut stats = DfsStats::default();
    let mut root_prefix: Vec<Item> = Vec::new();
    let mut rest: Vec<(Item, Bitset, usize)> = Vec::with_capacity(cands.len());
    for (item, t) in cands {
        stats.closure_checks += 1;
        let c = t.count_ones();
        if c == prefix_support {
            root_prefix.push(item);
        } else {
            rest.push((item, t, c));
        }
    }

    let mut seeded: Vec<RawPattern> = Vec::new();
    if !root_prefix.is_empty() {
        let mut items = root_prefix.clone();
        items.sort_unstable();
        seeded.push(RawPattern {
            items,
            support: prefix_support as u32,
        });
        if let Err(reason) = anytime::check_stop(seeded.len(), opts) {
            return Ok(finish(
                ts,
                min_sup,
                anytime::stopped_sequential(seeded, reason, opts),
                opts,
            ));
        }
    }

    let mined = if opts.may_extend(root_prefix.len()) {
        // Ascending-support order maximises later merge opportunities (CHARM).
        rest.sort_by_key(|&(item, _, c)| (c, item));
        let branches: Vec<usize> = (0..rest.len()).collect();
        // A stopped branch keeps its best-so-far candidates; the merge
        // truncates the concatenated stream at the cumulative budget, so the
        // surviving prefix is identical to a sequential run's.
        let results: Vec<(Vec<RawPattern>, Option<StopReason>, DfsStats)> =
            dfp_par::par_map(&branches, |&i| {
                let (item, ref t, _) = rest[i];
                let mut prefix = root_prefix.clone();
                prefix.push(item);
                let child_cands: Vec<(Item, Bitset)> = rest[i + 1..]
                    .iter()
                    .filter_map(|(j, tj, _)| {
                        let mut inter = tj.clone();
                        let n = inter.intersect_with_count(t);
                        (n >= min_sup).then_some((*j, inter))
                    })
                    .collect();
                let mut task_out = Vec::new();
                let mut task_stats = DfsStats::default();
                let stop = dfs(
                    &mut prefix,
                    t,
                    child_cands,
                    min_sup,
                    opts,
                    &mut task_out,
                    &mut task_stats,
                )
                .err();
                (task_out, stop, task_stats)
            });
        for (_, _, task_stats) in &results {
            stats.nodes += task_stats.nodes;
            stats.closure_checks += task_stats.closure_checks;
        }
        anytime::merge_task_outputs(
            seeded,
            results
                .into_iter()
                .map(|(out, stop, _)| (out, stop))
                .collect(),
            opts,
        )
    } else {
        Mined::complete(seeded)
    };
    let finished = finish(ts, min_sup, mined, opts);
    dfp_obs::metrics::dfp::mine_nodes_explored().add(stats.nodes);
    dfp_obs::metrics::dfp::mine_closure_checks().add(stats.closure_checks);
    dfp_obs::metrics::dfp::mine_patterns_emitted().add(finished.patterns.len() as u64);
    sp.attr("min_sup", min_sup);
    sp.attr("nodes", stats.nodes);
    sp.attr("closure_checks", stats.closure_checks);
    sp.attr("patterns", finished.patterns.len());
    Ok(finished)
}

/// Per-task search statistics, merged and flushed to the global counters
/// once per mining call.
#[derive(Debug, Default, Clone, Copy)]
struct DfsStats {
    /// DFS nodes entered (one per [`dfs`] invocation plus the root).
    nodes: u64,
    /// Closure-merge candidate comparisons (`tidset == prefix tidset`).
    closure_checks: u64,
}

/// Applies the closedness post-filter and the `min_len` cut to a (possibly
/// truncated) candidate stream.
///
/// The filter of choice is the PPC-tree **cover filter** from
/// `dfp-nodeset`: it canonicalises each candidate's tidset as fused
/// transaction-id intervals, so subsumption checks collapse to hash-map
/// grouping instead of the portable filter's per-support subset scans.
/// Both filters implement the same semantics (drop a pattern iff a strict
/// superset of equal support exists among the candidates); the portable
/// [`closed_filter`] remains as the fallback for candidate streams that
/// mention items outside the tree (possible only for hand-built streams,
/// never for candidates mined from `ts` at `min_sup`).
fn finish(ts: &TransactionSet, min_sup: usize, mined: Mined, opts: &MineOptions) -> Mined {
    let cands: Vec<dfp_nodeset::Pattern> = mined
        .patterns
        .into_iter()
        .map(|p| dfp_nodeset::Pattern {
            items: p.items,
            support: p.support,
        })
        .collect();
    let mut closed: Vec<RawPattern> =
        match dfp_nodeset::cover::closed_cover_filter(ts, min_sup, cands) {
            Ok(filtered) => filtered
                .into_iter()
                .map(|p| RawPattern {
                    items: p.items,
                    support: p.support,
                })
                .collect(),
            Err(unfiltered) => closed_filter(
                unfiltered
                    .into_iter()
                    .map(|p| RawPattern {
                        items: p.items,
                        support: p.support,
                    })
                    .collect(),
            ),
        };
    closed.retain(|p| p.len() >= opts.min_len);
    Mined {
        patterns: closed,
        complete: mined.complete,
        stopped_by: mined.stopped_by,
    }
}

/// DFS node. `cands` tidsets are already intersected with `tids` (the prefix
/// tidset) and meet `min_sup`.
fn dfs(
    prefix: &mut Vec<Item>,
    tids: &Bitset,
    mut cands: Vec<(Item, Bitset)>,
    min_sup: usize,
    opts: &MineOptions,
    out: &mut Vec<RawPattern>,
    stats: &mut DfsStats,
) -> Result<(), StopReason> {
    stats.nodes += 1;
    let prefix_support = tids.count_ones();

    // Closure merge: items present in every covering transaction.
    let mut rest: Vec<(Item, Bitset, usize)> = Vec::with_capacity(cands.len());
    let base_len = prefix.len();
    for (item, t) in cands.drain(..) {
        stats.closure_checks += 1;
        let c = t.count_ones();
        if c == prefix_support {
            prefix.push(item);
        } else {
            rest.push((item, t, c));
        }
    }

    // Emit the merged prefix as a closed-set candidate.
    if !prefix.is_empty() {
        let mut items = prefix.clone();
        items.sort_unstable();
        out.push(RawPattern {
            items,
            support: prefix_support as u32,
        });
        anytime::check_stop(out.len(), opts)?;
    }

    if opts.may_extend(prefix.len()) {
        // Ascending-support order maximises later merge opportunities (CHARM).
        rest.sort_by_key(|&(item, _, c)| (c, item));
        for i in 0..rest.len() {
            let (item, ref t, _) = rest[i];
            prefix.push(item);
            let child_cands: Vec<(Item, Bitset)> = rest[i + 1..]
                .iter()
                .filter_map(|(j, tj, _)| {
                    let mut inter = tj.clone();
                    let n = inter.intersect_with_count(t);
                    (n >= min_sup).then_some((*j, inter))
                })
                .collect();
            dfs(prefix, t, child_cands, min_sup, opts, out, stats)?;
            prefix.pop();
        }
    }

    prefix.truncate(base_len);
    Ok(())
}

/// Removes duplicates and non-closed candidates: keeps exactly the patterns
/// with no strict superset of equal support among the input.
///
/// Implementation: group by support; inside a group, patterns are checked
/// longest-first against an inverted item → pattern-id index, so each check
/// costs `O(|pattern| · avg-postings)` rather than a full group scan.
pub fn closed_filter(patterns: Vec<RawPattern>) -> Vec<RawPattern> {
    // Dedup identical itemsets.
    let mut uniq: HashMap<Vec<Item>, u32> = HashMap::with_capacity(patterns.len());
    for p in patterns {
        uniq.entry(p.items).or_insert(p.support);
    }

    // Group by support.
    let mut by_support: HashMap<u32, Vec<Vec<Item>>> = HashMap::new();
    for (items, support) in uniq {
        by_support.entry(support).or_default().push(items);
    }

    let mut out = Vec::new();
    for (support, mut group) in by_support {
        group.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        // kept patterns indexed by item
        let mut kept: Vec<Vec<Item>> = Vec::new();
        let mut postings: HashMap<Item, Vec<usize>> = HashMap::new();
        'next: for items in group {
            // subsumed iff some kept (strictly longer) pattern contains all items
            let mut hits: HashMap<usize, usize> = HashMap::new();
            for it in &items {
                if let Some(list) = postings.get(it) {
                    for &k in list {
                        if kept[k].len() > items.len() {
                            let h = hits.entry(k).or_insert(0);
                            *h += 1;
                            if *h == items.len() {
                                continue 'next; // subsumed
                            }
                        }
                    }
                }
            }
            let id = kept.len();
            for it in &items {
                postings.entry(*it).or_default().push(id);
            }
            kept.push(items);
        }
        out.extend(kept.into_iter().map(|items| RawPattern { items, support }));
    }
    out
}

/// Expands a closed-set listing back into the **full** frequent collection:
/// every non-empty subset of every closed set, with each subset's support
/// equal to the *maximum* support among the closed sets containing it (the
/// defining property of the closed representation).
///
/// Exponential in the longest closed set — this is the differential-oracle
/// counterpart of [`closed_filter`], meant for test-scale databases, not
/// production feature generation. Returns canonical order (length, then
/// lexicographic).
pub fn expand_frequent(closed: &[RawPattern]) -> Vec<RawPattern> {
    let mut best: HashMap<Vec<Item>, u32> = HashMap::new();
    let mut subset = Vec::new();
    for p in closed {
        expand_subsets(&p.items, p.support, 0, &mut subset, &mut best);
    }
    let mut out: Vec<RawPattern> = best
        .into_iter()
        .map(|(items, support)| RawPattern { items, support })
        .collect();
    crate::pattern::sort_canonical(&mut out);
    out
}

fn expand_subsets(
    items: &[Item],
    support: u32,
    start: usize,
    subset: &mut Vec<Item>,
    best: &mut HashMap<Vec<Item>, u32>,
) {
    for i in start..items.len() {
        subset.push(items[i]);
        let entry = best.entry(subset.clone()).or_insert(0);
        *entry = (*entry).max(support);
        expand_subsets(items, support, i + 1, subset, best);
        subset.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::sort_canonical;
    use crate::reference::mine_closed_brute_force;
    use dfp_data::schema::ClassId;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    fn assert_matches_brute(ts: &TransactionSet, min_sup: usize) {
        let mut got = mine_closed(ts, min_sup, &MineOptions::default()).unwrap();
        sort_canonical(&mut got);
        let want = mine_closed_brute_force(ts, min_sup, None);
        assert_eq!(got, want, "min_sup={min_sup}");
    }

    #[test]
    fn classic_example() {
        let ts = db(&[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]]);
        for min_sup in 1..=5 {
            assert_matches_brute(&ts, min_sup);
        }
    }

    #[test]
    fn identical_transactions_single_closed_set() {
        let ts = db(&[&[0, 1, 2], &[0, 1, 2], &[0, 1, 2]]);
        let got = mine_closed(&ts, 1, &MineOptions::default()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].items, vec![Item(0), Item(1), Item(2)]);
        assert_eq!(got[0].support, 3);
    }

    #[test]
    fn nested_supports() {
        // {0} ⊃-support chain: {0} sup 4, {0,1} sup 3, {0,1,2} sup 2 — all closed.
        let ts = db(&[&[0], &[0, 1], &[0, 1, 2], &[0, 1, 2]]);
        assert_matches_brute(&ts, 1);
        let got = mine_closed(&ts, 1, &MineOptions::default()).unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn overlapping_groups() {
        let ts = db(&[
            &[0, 1, 2, 3],
            &[0, 1, 2],
            &[0, 2, 3],
            &[1, 2, 3],
            &[0, 1],
            &[2, 3],
        ]);
        for min_sup in 1..=6 {
            assert_matches_brute(&ts, min_sup);
        }
    }

    #[test]
    fn closed_is_subset_of_frequent_with_matching_supports() {
        let ts = db(&[
            &[0, 1, 4],
            &[1, 3],
            &[1, 2],
            &[0, 1, 3],
            &[0, 2],
            &[0, 3, 4],
        ]);
        let closed = mine_closed(&ts, 2, &MineOptions::default()).unwrap();
        for p in &closed {
            assert_eq!(p.support as usize, ts.support(&p.items));
        }
        // every frequent set must have a closed superset with equal support
        let all = crate::eclat::mine(&ts, 2, &MineOptions::default()).unwrap();
        for f in &all {
            assert!(
                closed.iter().any(|c| c.support == f.support
                    && dfp_data::transactions::contains_sorted(&c.items, &f.items)),
                "no closed superset for {:?}",
                f.items
            );
        }
    }

    #[test]
    fn budget_aborts() {
        let ts = db(&[&[0, 1, 2], &[0, 1], &[1, 2], &[0, 2]]);
        let err = mine_closed(&ts, 1, &MineOptions::default().with_max_patterns(1)).unwrap_err();
        assert!(matches!(err, MiningError::PatternLimitExceeded { .. }));
    }

    #[test]
    fn min_len_filter_applies_after_closure() {
        let ts = db(&[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]]);
        let got = mine_closed(&ts, 1, &MineOptions::default().with_min_len(2)).unwrap();
        assert!(got.iter().all(|p| p.len() >= 2));
    }

    #[test]
    fn closed_filter_alone() {
        let pats = vec![
            RawPattern {
                items: vec![Item(0)],
                support: 2,
            },
            RawPattern {
                items: vec![Item(0), Item(1)],
                support: 2,
            },
            RawPattern {
                items: vec![Item(1)],
                support: 3,
            },
            RawPattern {
                items: vec![Item(0), Item(1)],
                support: 2,
            }, // dup
        ];
        let mut got = closed_filter(pats);
        sort_canonical(&mut got);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].items, vec![Item(1)]);
        assert_eq!(got[1].items, vec![Item(0), Item(1)]);
    }
}
