//! Vendored, std-only stand-in for the parts of the `proptest` crate this
//! workspace uses. The build environment has no crates.io access, so the
//! real `proptest` can never be fetched; this crate keeps the same import
//! paths and macro shapes (`proptest!`, `prop_assert*!`, `prop_assume!`,
//! `prop::collection::{vec, btree_set}`, `Strategy::prop_map`,
//! `ProptestConfig::with_cases`) so the property tests compile unchanged.
//!
//! Differences from upstream: generation is seeded **deterministically from
//! the test name** (reproducible CI, no persistence files) and failing cases
//! are not shrunk — the failure message reports the generated inputs
//! verbatim instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The generator handed to strategies — re-exported so strategies written
/// against this shim can name it.
pub type TestRng = StdRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not a failure.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests (subset of
/// `proptest::strategy::Strategy`; no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Collection-size specification accepted by [`collection`] strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rand::Rng::random_range(rng, self.lo..=self.hi)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>` with *target* sizes drawn from `size`
    /// (smaller sets are produced when the element domain is exhausted).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set below target; retry a bounded number
            // of times so small element domains terminate.
            let mut budget = target * 8 + 16;
            while set.len() < target && budget > 0 {
                set.insert(self.element.generate(rng));
                budget -= 1;
            }
            set
        }
    }
}

/// The `prop::` namespace used inside tests (`prop::collection::vec(..)`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// FNV-1a hash of the test name — the deterministic base seed per test.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property test: generates cases until `config.cases` succeed,
/// panicking on the first failure with the generated inputs.
///
/// `f` returns the case outcome plus a rendering of the generated inputs.
///
/// # Panics
/// Panics when a case fails or too many cases are rejected.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut attempt = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::seed_from_u64(name_seed(name).wrapping_add(attempt));
        attempt += 1;
        let (result, inputs) = f(&mut rng);
        match result {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property test `{name}`: too many rejected cases \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property test `{name}` failed at case {} (attempt {}):\n  {}\n  inputs: {}",
                    passed + 1,
                    attempt,
                    msg,
                    inputs
                );
            }
        }
    }
}

/// Renders generated inputs for failure messages; `Debug` output is
/// truncated so huge generated structures stay readable.
pub fn render_input<T: Debug>(name: &str, value: &T) -> String {
    let mut s = format!("{value:?}");
    const MAX: usize = 600;
    if s.len() > MAX {
        let mut cut = MAX;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
        s.push('…');
    }
    format!("{name} = {s}")
}

/// Checks a boolean property inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Checks equality inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Checks inequality inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests (subset of `proptest::proptest!`): an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn name(arg in
/// strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = [
                    $($crate::render_input(stringify!($arg), &$arg)),+
                ].join(", ");
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body Ok(()) })();
                (__outcome, __inputs)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

// `BTreeSet` re-export used by some strategy helper signatures upstream.
#[doc(hidden)]
pub use std::collections::BTreeSet as __BTreeSet;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn run_cases_counts_and_fails() {
        let mut n = 0;
        super::run_cases(ProptestConfig::with_cases(10), "counter", |_rng| {
            n += 1;
            (Ok(()), String::new())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_inputs() {
        super::run_cases(ProptestConfig::with_cases(5), "boom", |_rng| {
            (Err(super::TestCaseError::fail("nope")), "x = 1".to_string())
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn endless_rejects_panic() {
        super::run_cases(ProptestConfig::with_cases(2), "rejector", |_rng| {
            (Err(super::TestCaseError::Reject), String::new())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y), "y = {}", y);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(0u32..5, 2..6),
                             s in prop::collection::btree_set(0u32..100, 0..=10)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(s.len() <= 10);
        }

        #[test]
        fn tuples_and_map(pair in (0u32..4, 1usize..3),
                          doubled in (0u32..50).prop_map(|v| v * 2)) {
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 99);
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
