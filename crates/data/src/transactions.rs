//! Binary transaction representation `D = {x_i, y_i}`, `x_i ∈ B^d` (paper §2).
//!
//! Every `(attribute, value)` pair is a distinct [`Item`]; a transaction is
//! the sorted set of items present in an instance. [`TransactionSet`] also
//! carries labels, so the per-class partition mining of §3 ("The data is
//! partitioned according to the class label") is a method here.

use crate::bitset::Bitset;
use crate::rowset::RowSet;
use crate::schema::{AttributeKind, ClassId, Schema};

/// A single binary feature: one `(attribute, value)` pair, densely numbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Item(pub u32);

impl Item {
    /// Item index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Item {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A transaction: items sorted ascending, no duplicates.
pub type Transaction = Vec<Item>;

/// The bidirectional `(attribute, value) ↔ item` mapping.
///
/// Attributes with fewer than two values are **skipped**: a constant column
/// carries no information, and its "item" would cover every transaction —
/// poisoning frequent-set mining with `2^k` universal combinations. (This
/// matters in practice: supervised discretization collapses uninformative
/// numeric columns into a single bin.)
#[derive(Debug, Clone)]
pub struct ItemMap {
    /// `offsets[a]` is the item id of `(attribute a, value 0)`, or
    /// `u32::MAX` when attribute `a` maps to no items.
    offsets: Vec<u32>,
    /// `(attribute, value)` for each item, indexed by item id.
    pairs: Vec<(u32, u32)>,
    /// Human-readable names, `"attr=value"`, indexed by item id.
    names: Vec<String>,
}

const SKIPPED: u32 = u32::MAX;

impl ItemMap {
    /// Builds the map from an all-categorical schema.
    ///
    /// # Panics
    /// Panics if the schema contains numeric attributes.
    pub fn from_schema(schema: &Schema) -> Self {
        let mut offsets = Vec::with_capacity(schema.n_attributes());
        let mut pairs = Vec::new();
        let mut names = Vec::new();
        let mut next = 0u32;
        for (a, attr) in schema.attributes.iter().enumerate() {
            match &attr.kind {
                AttributeKind::Categorical { values } if values.len() >= 2 => {
                    offsets.push(next);
                    for (v, vname) in values.iter().enumerate() {
                        pairs.push((a as u32, v as u32));
                        names.push(format!("{}={}", attr.name, vname));
                        next += 1;
                    }
                }
                AttributeKind::Categorical { .. } => offsets.push(SKIPPED),
                AttributeKind::Numeric => {
                    panic!("attribute {a} ({}) is numeric; discretize first", attr.name)
                }
            }
        }
        ItemMap {
            offsets,
            pairs,
            names,
        }
    }

    /// Total number of items `d`.
    pub fn n_items(&self) -> usize {
        self.pairs.len()
    }

    /// `true` iff attribute `a` contributes items (arity ≥ 2).
    pub fn has_items(&self, attribute: usize) -> bool {
        self.offsets[attribute] != SKIPPED
    }

    /// The item for `(attribute, value)`.
    ///
    /// # Panics
    /// Panics if the attribute was skipped (constant column).
    pub fn item(&self, attribute: usize, value: usize) -> Item {
        assert!(
            self.has_items(attribute),
            "attribute {attribute} is constant and maps to no items"
        );
        Item(self.offsets[attribute] + value as u32)
    }

    /// The `(attribute, value)` pair behind an item.
    pub fn pair(&self, item: Item) -> (usize, usize) {
        let (a, v) = self.pairs[item.index()];
        (a as usize, v as usize)
    }

    /// Human-readable `"attr=value"` name of an item.
    pub fn name(&self, item: Item) -> &str {
        &self.names[item.index()]
    }

    /// Per-attribute starting item ids (`u32::MAX` marks a skipped constant
    /// attribute) — for model serialization.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// `(attribute, value)` pair per item id — for model serialization.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// `"attr=value"` name per item id — for model serialization.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Reconstructs a map from serialized state.
    ///
    /// # Panics
    /// Panics if `pairs` and `names` disagree in length or a non-skipped
    /// offset exceeds the item count.
    pub fn from_parts(offsets: Vec<u32>, pairs: Vec<(u32, u32)>, names: Vec<String>) -> Self {
        assert_eq!(pairs.len(), names.len(), "pairs/names length mismatch");
        for (a, &off) in offsets.iter().enumerate() {
            assert!(
                off == SKIPPED || (off as usize) <= pairs.len(),
                "attribute {a} offset out of range"
            );
        }
        ItemMap {
            offsets,
            pairs,
            names,
        }
    }
}

/// A labelled set of transactions over `d` items and `m` classes.
#[derive(Debug, Clone)]
pub struct TransactionSet {
    n_items: usize,
    n_classes: usize,
    transactions: Vec<Transaction>,
    labels: Vec<ClassId>,
}

impl TransactionSet {
    /// Creates a transaction set, validating item ranges, sortedness and labels.
    ///
    /// # Panics
    /// Panics on unsorted/duplicate items, out-of-range items or labels, or
    /// mismatched `transactions`/`labels` lengths.
    pub fn new(
        n_items: usize,
        n_classes: usize,
        transactions: Vec<Transaction>,
        labels: Vec<ClassId>,
    ) -> Self {
        assert_eq!(
            transactions.len(),
            labels.len(),
            "transactions/labels length mismatch"
        );
        for (t, tx) in transactions.iter().enumerate() {
            for w in tx.windows(2) {
                assert!(w[0] < w[1], "transaction {t} not strictly sorted");
            }
            if let Some(last) = tx.last() {
                assert!(last.index() < n_items, "transaction {t} item out of range");
            }
        }
        for (t, l) in labels.iter().enumerate() {
            assert!(l.index() < n_classes, "transaction {t} label out of range");
        }
        TransactionSet {
            n_items,
            n_classes,
            transactions,
            labels,
        }
    }

    /// Number of transactions `n`.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` if there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Number of items `d`.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of classes `m`.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The `t`-th transaction.
    pub fn transaction(&self, t: usize) -> &[Item] {
        &self.transactions[t]
    }

    /// All transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// The `t`-th label.
    pub fn label(&self, t: usize) -> ClassId {
        self.labels[t]
    }

    /// All labels.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Per-class transaction counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for l in &self.labels {
            counts[l.index()] += 1;
        }
        counts
    }

    /// Class priors `P(c)`.
    pub fn class_priors(&self) -> Vec<f64> {
        let n = self.len().max(1) as f64;
        self.class_counts()
            .into_iter()
            .map(|c| c as f64 / n)
            .collect()
    }

    /// Tidset of a single item as a [`Bitset`] over transaction ids.
    pub fn item_tidset(&self, item: Item) -> Bitset {
        let mut b = Bitset::new(self.len());
        for (t, tx) in self.transactions.iter().enumerate() {
            if tx.binary_search(&item).is_ok() {
                b.set(t);
            }
        }
        b
    }

    /// Vertical representation: tidset of every item, indexed by item id.
    pub fn vertical(&self) -> Vec<Bitset> {
        let mut v = vec![Bitset::new(self.len()); self.n_items];
        for (t, tx) in self.transactions.iter().enumerate() {
            for item in tx {
                v[item.index()].set(t);
            }
        }
        v
    }

    /// Vertical representation as adaptive [`RowSet`]s: each item's tidset
    /// in the representation picked by the active [`crate::rowset::mode`]
    /// (for `auto`, per column from its measured density). Row indices per
    /// item arrive ascending by construction, so compressed columns build
    /// without an intermediate dense pass.
    pub fn vertical_rowsets(&self) -> Vec<RowSet> {
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); self.n_items];
        for (t, tx) in self.transactions.iter().enumerate() {
            for item in tx {
                cols[item.index()].push(t);
            }
        }
        let n = self.len();
        cols.into_iter()
            .map(|idx| RowSet::from_sorted_indices(n, &idx))
            .collect()
    }

    /// Per-class row masks as adaptive [`RowSet`]s, indexed by class id —
    /// the "all class masks" side of the batched support scans.
    pub fn class_masks(&self) -> Vec<RowSet> {
        let n = self.len();
        self.class_partition_indices()
            .into_iter()
            .map(|idx| RowSet::from_sorted_indices(n, &idx))
            .collect()
    }

    /// Tidset of an itemset (intersection of item tidsets). The empty pattern
    /// covers everything.
    pub fn pattern_tidset(&self, items: &[Item]) -> Bitset {
        let mut b = Bitset::full(self.len());
        for &item in items {
            b.intersect_with(&self.item_tidset(item));
        }
        b
    }

    /// Absolute support of an itemset.
    pub fn support(&self, items: &[Item]) -> usize {
        self.transactions
            .iter()
            .filter(|tx| contains_sorted(tx, items))
            .count()
    }

    /// Absolute support of an itemset within each class:
    /// `counts[c] = |{t : items ⊆ t, label(t) = c}|`.
    pub fn class_supports(&self, items: &[Item]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for (tx, l) in self.transactions.iter().zip(&self.labels) {
            if contains_sorted(tx, items) {
                counts[l.index()] += 1;
            }
        }
        counts
    }

    /// Row indices belonging to each class.
    pub fn class_partition_indices(&self) -> Vec<Vec<usize>> {
        let mut parts = vec![Vec::new(); self.n_classes];
        for (t, l) in self.labels.iter().enumerate() {
            parts[l.index()].push(t);
        }
        parts
    }

    /// The per-class partitions as standalone transaction sets (paper §3:
    /// frequent patterns are discovered in each partition with `min_sup`).
    pub fn class_partitions(&self) -> Vec<TransactionSet> {
        self.class_partition_indices()
            .into_iter()
            .map(|idx| self.subset(&idx))
            .collect()
    }

    /// The sub-database at the given transaction indices (cloned).
    pub fn subset(&self, indices: &[usize]) -> TransactionSet {
        TransactionSet {
            n_items: self.n_items,
            n_classes: self.n_classes,
            transactions: indices
                .iter()
                .map(|&i| self.transactions[i].clone())
                .collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }
}

/// `true` iff the sorted slice `haystack` contains every item of the sorted
/// slice `needle` (subset test via merge walk).
pub fn contains_sorted(haystack: &[Item], needle: &[Item]) -> bool {
    let mut hi = 0;
    'outer: for &n in needle {
        while hi < haystack.len() {
            match haystack[hi].cmp(&n) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TransactionSet {
        // 4 transactions over 5 items, 2 classes.
        TransactionSet::new(
            5,
            2,
            vec![
                vec![Item(0), Item(1), Item(2)],
                vec![Item(0), Item(2)],
                vec![Item(1), Item(3)],
                vec![Item(0), Item(1), Item(4)],
            ],
            vec![ClassId(0), ClassId(0), ClassId(1), ClassId(1)],
        )
    }

    #[test]
    fn supports() {
        let ts = tiny();
        assert_eq!(ts.support(&[Item(0)]), 3);
        assert_eq!(ts.support(&[Item(0), Item(1)]), 2);
        assert_eq!(ts.support(&[]), 4);
        assert_eq!(ts.class_supports(&[Item(0), Item(1)]), vec![1, 1]);
        assert_eq!(ts.class_supports(&[Item(3)]), vec![0, 1]);
    }

    #[test]
    fn tidsets() {
        let ts = tiny();
        assert_eq!(
            ts.item_tidset(Item(0)).iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        assert_eq!(
            ts.pattern_tidset(&[Item(0), Item(1)])
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![0, 3]
        );
        let v = ts.vertical();
        assert_eq!(v[2].iter_ones().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn priors_and_partitions() {
        let ts = tiny();
        assert_eq!(ts.class_priors(), vec![0.5, 0.5]);
        let parts = ts.class_partitions();
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 2);
        assert_eq!(parts[1].transaction(0), &[Item(1), Item(3)]);
        // Partitions keep global item space.
        assert_eq!(parts[0].n_items(), 5);
    }

    #[test]
    fn contains_sorted_cases() {
        let hay = [Item(1), Item(3), Item(5)];
        assert!(contains_sorted(&hay, &[]));
        assert!(contains_sorted(&hay, &[Item(3)]));
        assert!(contains_sorted(&hay, &[Item(1), Item(5)]));
        assert!(!contains_sorted(&hay, &[Item(2)]));
        assert!(!contains_sorted(&hay, &[Item(5), Item(6)][..1 + 1]));
    }

    #[test]
    #[should_panic(expected = "not strictly sorted")]
    fn unsorted_transaction_panics() {
        TransactionSet::new(3, 1, vec![vec![Item(2), Item(1)]], vec![ClassId(0)]);
    }

    #[test]
    #[should_panic(expected = "item out of range")]
    fn item_out_of_range_panics() {
        TransactionSet::new(2, 1, vec![vec![Item(5)]], vec![ClassId(0)]);
    }

    #[test]
    fn item_map_roundtrip() {
        let schema = Schema::new(
            vec![
                crate::schema::Attribute::categorical_anon("a", 2),
                crate::schema::Attribute::categorical_anon("b", 3),
            ],
            vec!["c".into()],
        );
        let map = ItemMap::from_schema(&schema);
        assert_eq!(map.n_items(), 5);
        assert_eq!(map.item(1, 2), Item(4));
        assert_eq!(map.pair(Item(4)), (1, 2));
        assert_eq!(map.name(Item(0)), "a=v0");
    }

    #[test]
    fn constant_attributes_map_to_no_items() {
        let schema = Schema::new(
            vec![
                crate::schema::Attribute::categorical_anon("a", 2),
                crate::schema::Attribute::categorical_anon("constant", 1),
                crate::schema::Attribute::categorical_anon("b", 3),
            ],
            vec!["c".into()],
        );
        let map = ItemMap::from_schema(&schema);
        assert_eq!(map.n_items(), 5);
        assert!(map.has_items(0) && !map.has_items(1) && map.has_items(2));
        assert_eq!(map.item(2, 2), Item(4));
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn item_of_skipped_attribute_panics() {
        let schema = Schema::new(
            vec![crate::schema::Attribute::categorical_anon("constant", 1)],
            vec!["c".into()],
        );
        ItemMap::from_schema(&schema).item(0, 0);
    }
}
