//! Catalog of the 22 UCI dataset *profiles* used in the paper's evaluation.
//!
//! Each profile records the real dataset's instance count, attribute count,
//! class count and (approximate) class priors, plus generator knobs chosen so
//! the synthetic stand-in reproduces the dataset's *regime*: arity, density
//! (value concentration), numeric fraction and planted-pattern strength.
//! `default_min_sup` is the relative support the experiment harness mines
//! with on this profile (the paper does not publish per-dataset thresholds
//! for Tables 1–2; these defaults keep mining tractable while leaving
//! thousands of candidates for selection).
//!
//! Profiles 0–18 are the small datasets of Tables 1–2; [`dense_profiles`]
//! holds chess / waveform / letter used in the scalability Tables 3–5.

use super::{plant_random_patterns, AttrSpec, PlantSpec, SynthConfig};
use crate::dataset::Dataset;

/// A UCI dataset profile: real-world shape numbers plus generator knobs.
#[derive(Debug, Clone)]
pub struct UciProfile {
    /// Dataset name as printed in the paper's tables.
    pub name: &'static str,
    /// Number of instances in the real dataset.
    pub n_instances: usize,
    /// Number of attributes.
    pub n_attrs: usize,
    /// Values per attribute (bins for numeric ones).
    pub arity: usize,
    /// Fraction of attributes generated as numeric (requiring discretization).
    pub numeric_fraction: f64,
    /// Number of classes.
    pub n_classes: usize,
    /// Approximate class priors of the real dataset (normalised on use).
    pub priors: &'static [f64],
    /// Relative `min_sup` used by the experiment harness on this profile.
    pub default_min_sup: f64,
    /// Background value concentration `rho` (1.0 = uniform, small = dense).
    pub value_concentration: f64,
    /// Per-class background skew.
    pub class_skew: f64,
    /// Planted patterns per class.
    pub patterns_per_class: usize,
    /// Planted pattern length range.
    pub pattern_len: (usize, usize),
    /// In-class expression probability of plants.
    pub expr_in: f64,
    /// Out-of-class expression probability of plants.
    pub expr_out: f64,
    /// Missing-cell rate.
    pub missing_rate: f64,
}

impl UciProfile {
    /// Builds the full generator configuration. `seed_salt` lets callers draw
    /// independent replicates of the same profile.
    pub fn config(&self, seed_salt: u64) -> SynthConfig {
        let seed = fxhash_str(self.name) ^ seed_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let n_numeric = (self.n_attrs as f64 * self.numeric_fraction).round() as usize;
        let attrs: Vec<AttrSpec> = (0..self.n_attrs)
            .map(|a| AttrSpec {
                arity: self.arity,
                numeric: a < n_numeric,
            })
            .collect();
        let planted = plant_random_patterns(
            &attrs,
            self.n_classes,
            &PlantSpec {
                per_class: self.patterns_per_class,
                len_range: self.pattern_len,
                expr_in: self.expr_in,
                expr_out: self.expr_out,
                // Most plants get a cross-class sibling differing in one
                // value: the shared single items then carry little signal on
                // their own, which is the regime the paper's Tables 1–2
                // exercise (combined features matter).
                confusable_fraction: 0.85,
            },
            seed ^ 0xA5A5_5A5A,
        );
        SynthConfig {
            name: self.name.to_string(),
            n_instances: self.n_instances,
            class_priors: self.priors.to_vec(),
            attrs,
            planted,
            value_concentration: self.value_concentration,
            class_skew: self.class_skew,
            missing_rate: self.missing_rate,
            numeric_jitter: 0.55,
            seed,
        }
    }

    /// Generates the canonical replicate (salt 0) of this profile.
    pub fn generate(&self) -> Dataset {
        self.config(0).generate()
    }

    /// Default absolute `min_sup` for this profile.
    pub fn default_abs_min_sup(&self) -> usize {
        ((self.n_instances as f64 * self.default_min_sup).ceil() as usize).max(1)
    }
}

/// Deterministic string hash (FxHash-style) for seeding.
fn fxhash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

macro_rules! profile {
    ($name:literal, $n:expr, $attrs:expr, $arity:expr, $numfrac:expr, $classes:expr,
     $priors:expr, $minsup:expr, $rho:expr, $skew:expr, $ppc:expr, $plen:expr,
     $ein:expr, $eout:expr, $miss:expr) => {
        UciProfile {
            name: $name,
            n_instances: $n,
            n_attrs: $attrs,
            arity: $arity,
            numeric_fraction: $numfrac,
            n_classes: $classes,
            priors: &$priors,
            default_min_sup: $minsup,
            value_concentration: $rho,
            class_skew: $skew,
            patterns_per_class: $ppc,
            pattern_len: $plen,
            expr_in: $ein,
            expr_out: $eout,
            missing_rate: $miss,
        }
    };
}

/// The 19 small UCI profiles of Tables 1–2, in the paper's row order.
pub fn small_uci_profiles() -> Vec<UciProfile> {
    vec![
        profile!(
            "anneal",
            898,
            38,
            3,
            0.15,
            5,
            [0.76, 0.11, 0.075, 0.045, 0.01],
            0.20,
            0.55,
            0.25,
            3,
            (2, 3),
            0.65,
            0.04,
            0.02
        ),
        profile!(
            "austral",
            690,
            14,
            3,
            0.40,
            2,
            [0.555, 0.445],
            0.10,
            0.75,
            0.15,
            3,
            (2, 4),
            0.60,
            0.05,
            0.0
        ),
        profile!(
            "auto",
            205,
            25,
            4,
            0.60,
            6,
            [0.03, 0.11, 0.33, 0.26, 0.16, 0.11],
            0.20,
            0.70,
            0.20,
            2,
            (2, 3),
            0.65,
            0.05,
            0.01
        ),
        profile!(
            "breast",
            699,
            9,
            5,
            1.00,
            2,
            [0.655, 0.345],
            0.10,
            0.70,
            0.20,
            3,
            (2, 3),
            0.60,
            0.05,
            0.0
        ),
        profile!(
            "cleve",
            303,
            13,
            3,
            0.50,
            2,
            [0.54, 0.46],
            0.10,
            0.80,
            0.15,
            3,
            (2, 4),
            0.60,
            0.05,
            0.0
        ),
        profile!(
            "diabetes",
            768,
            8,
            4,
            1.00,
            2,
            [0.651, 0.349],
            0.10,
            0.80,
            0.12,
            3,
            (2, 3),
            0.55,
            0.08,
            0.0
        ),
        profile!(
            "glass",
            214,
            9,
            4,
            1.00,
            6,
            [0.327, 0.355, 0.079, 0.061, 0.042, 0.136],
            0.15,
            0.75,
            0.18,
            2,
            (2, 3),
            0.60,
            0.05,
            0.0
        ),
        profile!(
            "heart",
            270,
            13,
            3,
            0.50,
            2,
            [0.556, 0.444],
            0.10,
            0.80,
            0.15,
            3,
            (2, 4),
            0.60,
            0.05,
            0.0
        ),
        profile!(
            "hepatic",
            155,
            19,
            3,
            0.30,
            2,
            [0.79, 0.21],
            0.15,
            0.70,
            0.18,
            3,
            (2, 3),
            0.65,
            0.05,
            0.03
        ),
        profile!(
            "horse",
            368,
            22,
            3,
            0.40,
            2,
            [0.63, 0.37],
            0.15,
            0.70,
            0.15,
            3,
            (2, 4),
            0.60,
            0.05,
            0.05
        ),
        profile!(
            "iono",
            351,
            34,
            3,
            1.00,
            2,
            [0.641, 0.359],
            0.20,
            0.65,
            0.15,
            3,
            (2, 4),
            0.60,
            0.05,
            0.0
        ),
        profile!(
            "iris",
            150,
            4,
            3,
            1.00,
            3,
            [0.3334, 0.3333, 0.3333],
            0.10,
            0.90,
            0.25,
            2,
            (2, 2),
            0.70,
            0.04,
            0.0
        ),
        profile!(
            "labor",
            57,
            16,
            3,
            0.50,
            2,
            [0.65, 0.35],
            0.20,
            0.75,
            0.20,
            2,
            (2, 3),
            0.65,
            0.05,
            0.02
        ),
        profile!(
            "lymph",
            148,
            18,
            3,
            0.00,
            4,
            [0.02, 0.55, 0.41, 0.02],
            0.15,
            0.75,
            0.18,
            2,
            (2, 3),
            0.60,
            0.05,
            0.0
        ),
        profile!(
            "pima",
            768,
            8,
            4,
            1.00,
            2,
            [0.651, 0.349],
            0.10,
            0.80,
            0.12,
            3,
            (2, 3),
            0.55,
            0.08,
            0.0
        ),
        profile!(
            "sonar",
            208,
            60,
            3,
            1.00,
            2,
            [0.534, 0.466],
            0.25,
            0.65,
            0.12,
            3,
            (2, 4),
            0.60,
            0.05,
            0.0
        ),
        profile!(
            "vehicle",
            846,
            18,
            4,
            1.00,
            4,
            [0.25, 0.26, 0.26, 0.23],
            0.15,
            0.75,
            0.12,
            3,
            (2, 3),
            0.55,
            0.06,
            0.0
        ),
        profile!(
            "wine",
            178,
            13,
            3,
            1.00,
            3,
            [0.33, 0.40, 0.27],
            0.15,
            0.80,
            0.20,
            2,
            (2, 3),
            0.65,
            0.04,
            0.0
        ),
        profile!(
            "zoo",
            101,
            16,
            2,
            0.00,
            7,
            [0.41, 0.20, 0.05, 0.13, 0.04, 0.08, 0.09],
            0.20,
            0.70,
            0.30,
            1,
            (2, 3),
            0.70,
            0.03,
            0.0
        ),
    ]
}

/// The three dense profiles of the scalability study (Tables 3–5).
///
/// * `chess` (kr-vs-kp): 3 196 instances, ~73 items, 2 classes, extremely
///   dense — absolute supports in the paper's Table 3 range 2 000–3 000;
/// * `waveform`: 5 000 instances, 3 equal classes, 21 discretized numeric
///   attributes (Table 4 sweeps absolute support 80–200);
/// * `letter`: 20 000 instances, 26 classes, 16 attributes (Table 5 sweeps
///   3 000–4 500).
pub fn dense_profiles() -> Vec<UciProfile> {
    vec![
        profile!(
            "chess",
            3196,
            36,
            2,
            0.00,
            2,
            [0.522, 0.478],
            0.70,
            0.09,
            0.15,
            4,
            (2, 4),
            0.80,
            0.10,
            0.0
        ),
        profile!(
            "waveform",
            5000,
            21,
            5,
            0.00,
            3,
            [0.3334, 0.3333, 0.3333],
            0.016,
            0.90,
            0.15,
            4,
            (2, 3),
            0.55,
            0.05,
            0.0
        ),
        profile!(
            "letter",
            20000,
            16,
            7,
            0.00,
            26,
            [0.0385; 26],
            0.15,
            0.40,
            0.15,
            2,
            (2, 2),
            0.60,
            0.02,
            0.0
        ),
    ]
}

/// Out-of-core ingestion stress profile: `n_instances` rows of a sparse,
/// letter-like shape (16 attributes, arity 10, 2 classes, a quarter
/// numeric).
///
/// Streamed to disk with [`SynthConfig::write_csv_stream`] and read back
/// with [`crate::ingest::ingest_csv`], it exercises the bounded-resident-
/// memory `fit` path at sizes (a million rows and up) that never exist as a
/// `Dataset` in memory.
pub fn stream_profile(n_instances: usize) -> UciProfile {
    UciProfile {
        name: "stream",
        n_instances,
        n_attrs: 16,
        arity: 10,
        numeric_fraction: 0.25,
        n_classes: 2,
        priors: &[0.55, 0.45],
        default_min_sup: 0.4,
        value_concentration: 0.5,
        class_skew: 0.10,
        patterns_per_class: 2,
        pattern_len: (2, 3),
        expr_in: 0.6,
        expr_out: 0.05,
        missing_rate: 0.01,
    }
}

/// Looks up a profile by name across both catalogs.
pub fn profile_by_name(name: &str) -> Option<UciProfile> {
    small_uci_profiles()
        .into_iter()
        .chain(dense_profiles())
        .find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Value;

    #[test]
    fn catalog_sizes() {
        assert_eq!(small_uci_profiles().len(), 19);
        assert_eq!(dense_profiles().len(), 3);
    }

    #[test]
    fn priors_normalised_on_generate() {
        for p in small_uci_profiles() {
            let s: f64 = p.priors.iter().sum();
            assert!((s - 1.0).abs() < 0.02, "{}: priors sum {s}", p.name);
            assert_eq!(p.priors.len(), p.n_classes, "{}", p.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile_by_name("austral").is_some());
        assert!(profile_by_name("chess").is_some());
        assert!(profile_by_name("nonesuch").is_none());
    }

    #[test]
    fn generated_shape_matches_profile() {
        let p = profile_by_name("iris").unwrap();
        let d = p.generate();
        assert_eq!(d.len(), 150);
        assert_eq!(d.schema.n_attributes(), 4);
        assert_eq!(d.schema.n_classes(), 3);
        // iris is fully numeric
        assert!(d
            .rows
            .iter()
            .all(|r| r.iter().all(|v| matches!(v, Value::Num(_)))));
    }

    #[test]
    fn generation_is_deterministic_per_profile() {
        let p = profile_by_name("labor").unwrap();
        let a = p.generate();
        let b = p.generate();
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn salt_changes_data() {
        let p = profile_by_name("labor").unwrap();
        let a = p.config(0).generate();
        let b = p.config(1).generate();
        assert_ne!(a.labels, b.labels);
    }

    #[test]
    fn chess_is_dense() {
        let p = profile_by_name("chess").unwrap();
        let d = p.generate();
        assert_eq!(d.len(), 3196);
        let (ts, _) = d.to_transactions();
        // In a dense dataset many single items must exceed 60% support
        // (Table 3 mines at absolute support 2000–3000 of 3196).
        let v = ts.vertical();
        let heavy = v.iter().filter(|b| b.count_ones() >= 2000).count();
        assert!(heavy >= 15, "only {heavy} items have support >= 2000");
    }

    #[test]
    fn default_abs_min_sup() {
        let p = profile_by_name("austral").unwrap();
        assert_eq!(p.default_abs_min_sup(), 69);
    }
}
