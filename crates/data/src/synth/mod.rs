//! Seeded synthetic dataset generation with *planted discriminative
//! patterns*.
//!
//! The paper evaluates on UCI datasets, which cannot be fetched in this
//! offline environment (see `DESIGN.md` §4). This module generates labelled
//! categorical/numeric data whose **structure** carries the properties the
//! paper's experiments rely on:
//!
//! * each class owns planted itemsets ("rules") expressed with a chosen
//!   probability inside the class and a much lower one outside, giving
//!   medium-support, high-confidence combined features;
//! * a fraction of plants come in *confusable sibling pairs*: two classes
//!   receive patterns sharing all but one item, so the shared single items
//!   are nearly useless while the full combination is highly discriminative —
//!   this is what makes Figure 1's "patterns beat single features" claim
//!   reproducible rather than accidental;
//! * background noise is drawn from per-class skewed categorical
//!   distributions with controllable value concentration (`rho`), which
//!   controls dataset *density* — dense profiles (chess-like) concentrate
//!   mass so that itemset counts explode as `min_sup` drops, reproducing the
//!   scalability tables;
//! * numeric attributes emit bin centers plus jitter so the supervised
//!   discretizers have real work to do.
//!
//! Everything is deterministic given the seed.

mod uci;

pub use uci::{dense_profiles, profile_by_name, small_uci_profiles, stream_profile, UciProfile};

use crate::dataset::{Dataset, Value};
use crate::schema::{Attribute, ClassId, Schema};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};
use std::io::{self, Write};

/// Specification of one synthetic attribute.
#[derive(Debug, Clone, Copy)]
pub struct AttrSpec {
    /// Number of distinct values (bins for numeric attributes).
    pub arity: usize,
    /// If `true`, the generator emits `Value::Num` (bin center + jitter)
    /// and the pipeline must discretize; if `false`, `Value::Cat`.
    pub numeric: bool,
}

/// A planted discriminative pattern: a conjunction of `(attribute, value)`
/// pairs associated with a class.
#[derive(Debug, Clone)]
pub struct PlantedPattern {
    /// Owning class.
    pub class: u32,
    /// The conjunction; attributes are distinct.
    pub attr_values: Vec<(usize, u32)>,
    /// Probability the pattern is expressed in an instance of its class.
    pub expr_in: f64,
    /// Probability the pattern is expressed in an instance of another class.
    pub expr_out: f64,
}

/// Full configuration of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset name (becomes attribute-name prefix).
    pub name: String,
    /// Number of instances `n`.
    pub n_instances: usize,
    /// Class priors; normalised internally.
    pub class_priors: Vec<f64>,
    /// Attribute specifications.
    pub attrs: Vec<AttrSpec>,
    /// Planted patterns.
    pub planted: Vec<PlantedPattern>,
    /// Value concentration `rho ∈ (0, 1]`: background value `v` gets weight
    /// `rho^v`. `1.0` = uniform (sparse co-occurrence), small = dense.
    pub value_concentration: f64,
    /// Strength of per-class background skew in `[0, 1)`: with this
    /// probability, the class's preferred value is drawn instead of the base
    /// distribution.
    pub class_skew: f64,
    /// Probability a cell is missing.
    pub missing_rate: f64,
    /// Jitter scale around bin centers for numeric attributes.
    pub numeric_jitter: f64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl SynthConfig {
    /// The schema of the generated dataset (no data generation involved).
    pub fn schema(&self) -> Schema {
        let attributes: Vec<Attribute> = self
            .attrs
            .iter()
            .enumerate()
            .map(|(a, spec)| {
                if spec.numeric {
                    Attribute::numeric(format!("{}_n{a}", self.name))
                } else {
                    Attribute::categorical_anon(format!("{}_c{a}", self.name), spec.arity)
                }
            })
            .collect();
        Schema::new(
            attributes,
            (0..self.class_priors.len())
                .map(|c| format!("class{c}"))
                .collect(),
        )
    }

    /// Streaming row generator: yields `(row, label)` pairs one at a time
    /// without materialising the dataset, in exactly the order and with
    /// exactly the values [`generate`](Self::generate) produces.
    ///
    /// # Panics
    /// Panics on empty attribute/class lists or non-positive priors.
    pub fn rows(&self) -> RowGen<'_> {
        assert!(!self.attrs.is_empty(), "need at least one attribute");
        assert!(!self.class_priors.is_empty(), "need at least one class");
        assert!(
            self.class_priors.iter().all(|&p| p >= 0.0)
                && self.class_priors.iter().sum::<f64>() > 0.0,
            "priors must be non-negative and not all zero"
        );
        for p in &self.planted {
            assert!(
                (p.class as usize) < self.class_priors.len(),
                "planted class out of range"
            );
            for &(a, v) in &p.attr_values {
                assert!(a < self.attrs.len(), "planted attribute out of range");
                assert!(
                    (v as usize) < self.attrs[a].arity,
                    "planted value out of range"
                );
            }
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_classes = self.class_priors.len();

        // Cumulative class priors.
        let total: f64 = self.class_priors.iter().sum();
        let mut cum = Vec::with_capacity(n_classes);
        let mut acc = 0.0;
        for p in &self.class_priors {
            acc += p / total;
            cum.push(acc);
        }

        // Per-attribute base value distribution (geometric in rho) as
        // cumulative weights, with a per-(class, attr) preferred value.
        let rho = self.value_concentration.clamp(1e-6, 1.0);
        let base_cum: Vec<Vec<f64>> = self
            .attrs
            .iter()
            .map(|spec| {
                let mut w: Vec<f64> = (0..spec.arity).map(|v| rho.powi(v as i32)).collect();
                let s: f64 = w.iter().sum();
                let mut acc = 0.0;
                for x in w.iter_mut() {
                    acc += *x / s;
                    *x = acc;
                }
                w
            })
            .collect();
        let pref: Vec<Vec<u32>> = (0..n_classes)
            .map(|_| {
                self.attrs
                    .iter()
                    .map(|spec| rng.random_range(0..spec.arity) as u32)
                    .collect()
            })
            .collect();

        RowGen {
            cfg: self,
            rng,
            cum,
            base_cum,
            pref,
            pattern_order: (0..self.planted.len()).collect(),
            remaining: self.n_instances,
        }
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics on empty attribute/class lists or non-positive priors.
    pub fn generate(&self) -> Dataset {
        let mut rows = Vec::with_capacity(self.n_instances);
        let mut labels = Vec::with_capacity(self.n_instances);
        for (row, label) in self.rows() {
            rows.push(row);
            labels.push(label);
        }
        Dataset::new(self.schema(), rows, labels)
    }

    /// Streams the dataset as CSV (header, one row per instance, class last)
    /// without ever holding more than one row in memory — the producer side
    /// of the out-of-core ingestion path ([`crate::ingest::ingest_csv`]).
    ///
    /// Categorical cells are written as their `v{k}` value names (so they
    /// re-ingest as categorical, not numeric), numeric cells as shortest
    /// round-trip decimals, missing cells as `?`.
    pub fn write_csv_stream<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let mut w = io::BufWriter::new(w);
        let schema = self.schema();
        for attr in &schema.attributes {
            write!(w, "{},", attr.name)?;
        }
        writeln!(w, "class")?;
        for (row, label) in self.rows() {
            for cell in &row {
                match cell {
                    Value::Missing => write!(w, "?,")?,
                    Value::Num(x) => write!(w, "{x},")?,
                    Value::Cat(v) => write!(w, "v{v},")?,
                }
            }
            writeln!(w, "{}", schema.class_names[label.index()])?;
        }
        w.flush()
    }
}

/// Streaming iterator over synthetic `(row, label)` pairs.
///
/// Created by [`SynthConfig::rows`]; replays the exact RNG call sequence of
/// [`SynthConfig::generate`], so collecting it reproduces the dataset
/// row-for-row.
#[derive(Debug)]
pub struct RowGen<'a> {
    cfg: &'a SynthConfig,
    rng: StdRng,
    cum: Vec<f64>,
    base_cum: Vec<Vec<f64>>,
    pref: Vec<Vec<u32>>,
    pattern_order: Vec<usize>,
    remaining: usize,
}

impl Iterator for RowGen<'_> {
    type Item = (Vec<Value>, ClassId);

    fn next(&mut self) -> Option<(Vec<Value>, ClassId)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let cfg = self.cfg;
        let n_classes = cfg.class_priors.len();
        let rng = &mut self.rng;
        let u: f64 = rng.random();
        let class = self.cum.partition_point(|&c| c < u).min(n_classes - 1) as u32;

        // Background draw.
        let mut cells: Vec<u32> = (0..cfg.attrs.len())
            .map(|a| {
                if cfg.class_skew > 0.0 && rng.random::<f64>() < cfg.class_skew {
                    self.pref[class as usize][a]
                } else {
                    let u: f64 = rng.random();
                    self.base_cum[a]
                        .partition_point(|&c| c < u)
                        .min(cfg.attrs[a].arity - 1) as u32
                }
            })
            .collect();

        // Express planted patterns (random order so overlapping plants
        // don't systematically shadow each other).
        self.pattern_order.shuffle(rng);
        for &pi in &self.pattern_order {
            let p = &cfg.planted[pi];
            let prob = if p.class == class {
                p.expr_in
            } else {
                p.expr_out
            };
            if prob > 0.0 && rng.random::<f64>() < prob {
                for &(a, v) in &p.attr_values {
                    cells[a] = v;
                }
            }
        }

        // Materialise values (numeric jitter, missingness).
        let row: Vec<Value> = cells
            .iter()
            .enumerate()
            .map(|(a, &v)| {
                if cfg.missing_rate > 0.0 && rng.random::<f64>() < cfg.missing_rate {
                    return Value::Missing;
                }
                if cfg.attrs[a].numeric {
                    // Triangular jitter around the bin center.
                    let j = (rng.random::<f64>() + rng.random::<f64>() - 1.0) * cfg.numeric_jitter;
                    Value::Num(v as f64 + j)
                } else {
                    Value::Cat(v)
                }
            })
            .collect();
        Some((row, ClassId(class)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Options controlling [`plant_random_patterns`].
#[derive(Debug, Clone)]
pub struct PlantSpec {
    /// Patterns per class.
    pub per_class: usize,
    /// Inclusive pattern length range.
    pub len_range: (usize, usize),
    /// Expression probability inside the owning class.
    pub expr_in: f64,
    /// Expression probability outside the owning class.
    pub expr_out: f64,
    /// Fraction of plants that get a *confusable sibling* in another class
    /// (same items except one flipped value) — these drive the "combined
    /// features beat single features" effect.
    pub confusable_fraction: f64,
}

impl Default for PlantSpec {
    fn default() -> Self {
        PlantSpec {
            per_class: 3,
            len_range: (2, 4),
            expr_in: 0.6,
            expr_out: 0.05,
            confusable_fraction: 0.5,
        }
    }
}

/// Generates random planted patterns for every class per `spec`.
///
/// Deterministic given `seed`. Pattern attributes are sampled without
/// replacement within a pattern; sibling patterns flip exactly one value.
pub fn plant_random_patterns(
    attrs: &[AttrSpec],
    n_classes: usize,
    spec: &PlantSpec,
    seed: u64,
) -> Vec<PlantedPattern> {
    assert!(spec.len_range.0 >= 1 && spec.len_range.0 <= spec.len_range.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut planted = Vec::new();
    let max_len = spec.len_range.1.min(attrs.len());
    let min_len = spec.len_range.0.min(max_len);
    let mut attr_pool: Vec<usize> = (0..attrs.len()).collect();
    for class in 0..n_classes as u32 {
        for _ in 0..spec.per_class {
            let len = rng.random_range(min_len..=max_len);
            attr_pool.shuffle(&mut rng);
            let attr_values: Vec<(usize, u32)> = attr_pool[..len]
                .iter()
                .map(|&a| (a, rng.random_range(0..attrs[a].arity) as u32))
                .collect();
            let pattern = PlantedPattern {
                class,
                attr_values,
                expr_in: spec.expr_in,
                expr_out: spec.expr_out,
            };
            if n_classes > 1 && rng.random::<f64>() < spec.confusable_fraction {
                // Sibling for a different class: flip one value (choose an
                // attribute with arity >= 2 if possible).
                let mut sibling = pattern.clone();
                let mut other = rng.random_range(0..n_classes as u32 - 1);
                if other >= class {
                    other += 1;
                }
                sibling.class = other;
                let flip_candidates: Vec<usize> = sibling
                    .attr_values
                    .iter()
                    .enumerate()
                    .filter(|(_, &(a, _))| attrs[a].arity >= 2)
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&fi) = flip_candidates.as_slice().choose(&mut rng) {
                    let (a, v) = sibling.attr_values[fi];
                    let nv = (v + 1 + rng.random_range(0..attrs[a].arity as u32 - 1))
                        % attrs[a].arity as u32;
                    sibling.attr_values[fi] = (a, nv);
                    planted.push(sibling);
                }
            }
            planted.push(pattern);
        }
    }
    planted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SynthConfig {
        let attrs = vec![
            AttrSpec {
                arity: 3,
                numeric: false,
            },
            AttrSpec {
                arity: 3,
                numeric: false,
            },
            AttrSpec {
                arity: 4,
                numeric: true,
            },
            AttrSpec {
                arity: 2,
                numeric: false,
            },
        ];
        let planted = plant_random_patterns(&attrs, 2, &PlantSpec::default(), 9);
        SynthConfig {
            name: "t".into(),
            n_instances: 300,
            class_priors: vec![0.6, 0.4],
            attrs,
            planted,
            value_concentration: 0.8,
            class_skew: 0.15,
            missing_rate: 0.0,
            numeric_jitter: 0.3,
            seed: 11,
        }
    }

    #[test]
    fn deterministic() {
        let c = small_config();
        let a = c.generate();
        let b = c.generate();
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            for (u, v) in x.iter().zip(y) {
                match (u, v) {
                    (Value::Num(a), Value::Num(b)) => assert_eq!(a, b),
                    _ => assert_eq!(u, v),
                }
            }
        }
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn streaming_rows_match_generate() {
        let c = small_config();
        let d = c.generate();
        let mut n = 0;
        for ((row, label), (drow, dlabel)) in c.rows().zip(d.rows.iter().zip(&d.labels)) {
            assert_eq!(&row, drow);
            assert_eq!(&label, dlabel);
            n += 1;
        }
        assert_eq!(n, d.rows.len());
    }

    #[test]
    fn csv_stream_round_trips_through_ingest() {
        let mut c = small_config();
        c.missing_rate = 0.05;
        let mut buf = Vec::new();
        c.write_csv_stream(&mut buf).unwrap();
        let ing =
            crate::ingest::ingest_bytes(&buf, &crate::ingest::IngestOptions::default()).unwrap();
        assert_eq!(ing.transactions.len(), c.n_instances);
        assert_eq!(ing.schema.n_attributes(), c.attrs.len());
        // Class distribution survives the round trip: count label names.
        let d = c.generate();
        let mut want = vec![0usize; d.schema.n_classes()];
        for l in &d.labels {
            want[l.index()] += 1;
        }
        let mut got = vec![0usize; ing.schema.n_classes()];
        for l in ing.transactions.labels() {
            got[l.index()] += 1;
        }
        // Ingest discovers class names in first-appearance order, so compare
        // by name rather than by id.
        for (c_id, name) in d.schema.class_names.iter().enumerate() {
            let ing_id = ing
                .schema
                .class_names
                .iter()
                .position(|n| n == name)
                .unwrap();
            assert_eq!(want[c_id], got[ing_id], "class {name}");
        }
    }

    #[test]
    fn priors_approximately_respected() {
        let mut c = small_config();
        c.n_instances = 5000;
        let d = c.generate();
        let counts = d.class_counts();
        let frac0 = counts[0] as f64 / 5000.0;
        assert!((frac0 - 0.6).abs() < 0.05, "class-0 fraction {frac0}");
    }

    #[test]
    fn numeric_attrs_emit_numbers() {
        let d = small_config().generate();
        for row in &d.rows {
            assert!(matches!(row[2], Value::Num(_)));
            assert!(matches!(row[0], Value::Cat(_)));
        }
    }

    #[test]
    fn planted_pattern_is_class_correlated() {
        let mut c = small_config();
        c.n_instances = 4000;
        c.class_skew = 0.0;
        c.planted = vec![PlantedPattern {
            class: 0,
            attr_values: vec![(0, 1), (1, 2)],
            expr_in: 0.7,
            expr_out: 0.02,
        }];
        let d = c.generate();
        let mut in_class = 0usize;
        let mut in_class_hit = 0usize;
        let mut out_class = 0usize;
        let mut out_class_hit = 0usize;
        for (row, label) in d.rows.iter().zip(&d.labels) {
            let hit = row[0] == Value::Cat(1) && row[1] == Value::Cat(2);
            if label.index() == 0 {
                in_class += 1;
                in_class_hit += hit as usize;
            } else {
                out_class += 1;
                out_class_hit += hit as usize;
            }
        }
        let p_in = in_class_hit as f64 / in_class as f64;
        let p_out = out_class_hit as f64 / out_class as f64;
        assert!(p_in > 0.6, "expression inside class too low: {p_in}");
        assert!(p_out < 0.2, "expression outside class too high: {p_out}");
    }

    #[test]
    fn missing_rate_produces_missing_cells() {
        let mut c = small_config();
        c.missing_rate = 0.3;
        let d = c.generate();
        let missing = d
            .rows
            .iter()
            .flat_map(|r| r.iter())
            .filter(|v| matches!(v, Value::Missing))
            .count();
        let total = d.rows.len() * d.schema.n_attributes();
        let frac = missing as f64 / total as f64;
        assert!((frac - 0.3).abs() < 0.05, "missing fraction {frac}");
    }

    #[test]
    fn plant_random_patterns_valid_and_deterministic() {
        let attrs = vec![
            AttrSpec {
                arity: 4,
                numeric: false
            };
            10
        ];
        let spec = PlantSpec {
            per_class: 5,
            confusable_fraction: 1.0,
            ..PlantSpec::default()
        };
        let a = plant_random_patterns(&attrs, 3, &spec, 1);
        let b = plant_random_patterns(&attrs, 3, &spec, 1);
        assert_eq!(a.len(), b.len());
        // every confusable plant adds a sibling → 2 plants per request
        assert_eq!(a.len(), 3 * 5 * 2);
        for p in &a {
            assert!(p.class < 3);
            let mut seen = std::collections::HashSet::new();
            for &(attr, v) in &p.attr_values {
                assert!(attr < 10 && (v as usize) < 4);
                assert!(seen.insert(attr), "duplicate attribute in pattern");
            }
        }
    }

    #[test]
    fn confusable_siblings_differ_in_exactly_one_value() {
        let attrs = vec![
            AttrSpec {
                arity: 4,
                numeric: false
            };
            10
        ];
        let spec = PlantSpec {
            per_class: 1,
            len_range: (3, 3),
            confusable_fraction: 1.0,
            ..PlantSpec::default()
        };
        let plants = plant_random_patterns(&attrs, 2, &spec, 5);
        assert_eq!(plants.len(), 4);
        // plants come in (sibling, original) adjacent pairs
        for pair in plants.chunks(2) {
            let (s, o) = (&pair[0], &pair[1]);
            assert_ne!(s.class, o.class);
            let sa: std::collections::HashMap<usize, u32> = s.attr_values.iter().copied().collect();
            let diff = o
                .attr_values
                .iter()
                .filter(|&&(a, v)| sa.get(&a) != Some(&v))
                .count();
            assert_eq!(diff, 1, "sibling must differ in exactly one value");
        }
    }
}
