//! A fixed-width bitset over `u64` blocks.
//!
//! Used as the *tidset* (transaction-id set) representation throughout the
//! workspace. The hot operations for the paper's algorithms are:
//!
//! * [`Bitset::intersection_count`] — pattern support and the numerator of
//!   the Jaccard redundancy measure (Eq. 9);
//! * [`Bitset::union_count`] — the denominator of Eq. 9;
//! * [`Bitset::intersect_with`] — incremental tidset computation while
//!   extending a pattern item by item;
//! * [`Bitset::iter_ones`] — database-coverage bookkeeping in MMRFS.
//!
//! All counting and combining kernels delegate to the chunked 4-wide block
//! loops in [`crate::kernels`]; the previous one-word-at-a-time versions are
//! preserved in [`scalar`] as the measured baseline for the
//! `data_substrate` bench and the equivalence proptests.

use crate::kernels;

/// A set of bit positions in `[0, len)`, stored as `u64` blocks.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitset {
    blocks: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for Bitset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter_ones()).finish()
    }
}

/// Words per cache tile of the batched one-vs-many scan
/// ([`Bitset::batch_intersection_counts`]): 512 × 8 B = 4 KiB of the probe
/// bitset stays resident in L1 while every mask's matching stripe streams
/// past it.
pub(crate) const TILE_WORDS: usize = 512;

impl Bitset {
    /// Creates an empty bitset able to hold `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Bitset {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitset of `len` bits with every bit in `[0, len)` set.
    pub fn full(len: usize) -> Self {
        let mut b = Bitset {
            blocks: vec![!0u64; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Builds a bitset from an iterator of bit indices.
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut b = Bitset::new(len);
        for i in indices {
            b.set(i);
        }
        b
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        kernels::count(&self.blocks)
    }

    /// `|self ∩ other|` without allocating.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersection_count(&self, other: &Bitset) -> usize {
        self.check_same_len(other);
        kernels::and_count(&self.blocks, &other.blocks)
    }

    /// `|self ∪ other|` without allocating.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn union_count(&self, other: &Bitset) -> usize {
        self.check_same_len(other);
        kernels::or_count(&self.blocks, &other.blocks)
    }

    /// `|self \ other|` without allocating.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn difference_count(&self, other: &Bitset) -> usize {
        self.check_same_len(other);
        kernels::andnot_count(&self.blocks, &other.blocks)
    }

    /// `|self ∩ other| >= min` with per-tile early exit.
    ///
    /// The support-pruning kernel: a DFS node that only needs to know
    /// whether an extension stays frequent can stop counting as soon as
    /// the running intersection count reaches `min`, without materialising
    /// the intersection. `min == 0` is trivially `true`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersection_count_at_least(&self, other: &Bitset, min: usize) -> bool {
        self.check_same_len(other);
        if min == 0 {
            return true;
        }
        // Chunked body with a coarser exit check: testing every 4-word block
        // keeps the vectorizable inner loop branch-light while still bailing
        // out within 256 bits of crossing the threshold.
        let mut count = 0usize;
        let mut ita = self.blocks.chunks_exact(4);
        let mut itb = other.blocks.chunks_exact(4);
        for (wa, wb) in (&mut ita).zip(&mut itb) {
            count += (wa[0] & wb[0]).count_ones() as usize
                + (wa[1] & wb[1]).count_ones() as usize
                + (wa[2] & wb[2]).count_ones() as usize
                + (wa[3] & wb[3]).count_ones() as usize;
            if count >= min {
                return true;
            }
        }
        for (a, b) in ita.remainder().iter().zip(itb.remainder()) {
            count += (a & b).count_ones() as usize;
            if count >= min {
                return true;
            }
        }
        false
    }

    /// `(|self ∩ other|, |self ∪ other|)` in a single pass over the blocks.
    ///
    /// Fuses the two popcount loops of Jaccard (Eq. 9) into one.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersection_union_count(&self, other: &Bitset) -> (usize, usize) {
        self.check_same_len(other);
        kernels::and_or_count(&self.blocks, &other.blocks)
    }

    /// In-place `self &= other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with(&mut self, other: &Bitset) {
        self.check_same_len(other);
        kernels::and_in_place(&mut self.blocks, &other.blocks);
    }

    /// In-place `self &= other`, returning the resulting `count_ones` from
    /// the same pass — the incremental-tidset kernel of the vertical miners
    /// (fuses the former `intersect_with` + `count_ones` pair).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with_count(&mut self, other: &Bitset) -> usize {
        self.check_same_len(other);
        kernels::and_in_place_count(&mut self.blocks, &other.blocks)
    }

    /// In-place `self |= other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &Bitset) {
        self.check_same_len(other);
        kernels::or_in_place(&mut self.blocks, &other.blocks);
    }

    /// In-place `self &= !other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn subtract(&mut self, other: &Bitset) {
        self.check_same_len(other);
        kernels::andnot_in_place(&mut self.blocks, &other.blocks);
    }

    /// `true` iff every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn is_subset_of(&self, other: &Bitset) -> bool {
        self.check_same_len(other);
        kernels::is_subset(&self.blocks, &other.blocks)
    }

    /// Overwrites `self` with the contents of `other` without reallocating.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &Bitset) {
        self.check_same_len(other);
        self.blocks.copy_from_slice(&other.blocks);
    }

    /// Jaccard similarity `|A∩B| / |A∪B|`, `0.0` when both are empty.
    ///
    /// This is the set-overlap factor of the paper's redundancy measure
    /// `R(α, β)` (Eq. 9).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn jaccard(&self, other: &Bitset) -> f64 {
        let (inter, union) = self.intersection_union_count(other);
        if union == 0 {
            return 0.0;
        }
        inter as f64 / union as f64
    }

    /// `|self ∩ masks[j]|` for every mask in one cache-blocked sweep.
    ///
    /// The "one pattern tidset vs. all class masks" scan of measure
    /// evaluation and class-support attachment. Instead of streaming the
    /// whole probe bitset once per mask (reloading it from memory each
    /// time), the probe is walked in [`TILE_WORDS`]-word tiles: each 4 KiB
    /// tile is intersected against the matching stripe of *every* mask
    /// while it is still L1-resident.
    ///
    /// # Panics
    /// Panics if any mask length differs from `self.len()`.
    pub fn batch_intersection_counts(&self, masks: &[Bitset]) -> Vec<usize> {
        for m in masks {
            self.check_same_len(m);
        }
        let mut counts = vec![0usize; masks.len()];
        let mut start = 0usize;
        while start < self.blocks.len() {
            let end = (start + TILE_WORDS).min(self.blocks.len());
            let tile = &self.blocks[start..end];
            for (j, m) in masks.iter().enumerate() {
                counts[j] += kernels::and_count(tile, &m.blocks[start..end]);
            }
            start = end;
        }
        counts
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            blocks: &self.blocks,
            next_block: 0,
            current: BlockOnes { block: 0, base: 0 },
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// The backing words (tail bits beyond `len` are always zero).
    pub(crate) fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Mutable backing words. Callers must keep tail bits clear.
    pub(crate) fn blocks_mut(&mut self) -> &mut [u64] {
        &mut self.blocks
    }

    fn clear_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    fn check_same_len(&self, other: &Bitset) {
        assert_eq!(
            self.len, other.len,
            "bitset length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

/// Iterator over set-bit indices in ascending order
/// (see [`Bitset::iter_ones`]).
pub struct Ones<'a> {
    blocks: &'a [u64],
    next_block: usize,
    current: BlockOnes,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if let Some(i) = self.current.next() {
                return Some(i);
            }
            let bi = self.next_block;
            let &block = self.blocks.get(bi)?;
            self.next_block += 1;
            self.current = BlockOnes {
                block,
                base: bi * 64,
            };
        }
    }
}

struct BlockOnes {
    block: u64,
    base: usize,
}

impl Iterator for BlockOnes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let tz = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(self.base + tz)
    }
}

/// One-`u64`-at-a-time reference kernels — the pre-substrate baselines.
///
/// Kept (not compiled out) so the `data_substrate` bench can measure the
/// chunked kernels against the exact loops they replaced, and so the
/// equivalence proptests can assert the rewrite is bit-identical.
pub mod scalar {
    use super::Bitset;

    /// Scalar `|a ∩ b|` (the pre-substrate `intersection_count` loop).
    pub fn intersection_count(a: &Bitset, b: &Bitset) -> usize {
        a.blocks
            .iter()
            .zip(&b.blocks)
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// Scalar `|a ∪ b|`.
    pub fn union_count(a: &Bitset, b: &Bitset) -> usize {
        a.blocks
            .iter()
            .zip(&b.blocks)
            .map(|(x, y)| (x | y).count_ones() as usize)
            .sum()
    }

    /// Scalar `|a \ b|`.
    pub fn difference_count(a: &Bitset, b: &Bitset) -> usize {
        a.blocks
            .iter()
            .zip(&b.blocks)
            .map(|(x, y)| (x & !y).count_ones() as usize)
            .sum()
    }

    /// Scalar fused `(|a ∩ b|, |a ∪ b|)`.
    pub fn intersection_union_count(a: &Bitset, b: &Bitset) -> (usize, usize) {
        let mut inter = 0usize;
        let mut union = 0usize;
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            inter += (x & y).count_ones() as usize;
            union += (x | y).count_ones() as usize;
        }
        (inter, union)
    }

    /// Scalar in-place `a &= b` returning the resulting popcount.
    pub fn intersect_with_count(a: &mut Bitset, b: &Bitset) -> usize {
        let mut count = 0usize;
        for (x, y) in a.blocks.iter_mut().zip(&b.blocks) {
            *x &= y;
            count += x.count_ones() as usize;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitset::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.unset(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn full_respects_length() {
        let b = Bitset::full(70);
        assert_eq!(b.count_ones(), 70);
        assert_eq!(b.iter_ones().count(), 70);
        assert_eq!(b.iter_ones().last(), Some(69));
    }

    #[test]
    fn full_exact_block_boundary() {
        let b = Bitset::full(128);
        assert_eq!(b.count_ones(), 128);
    }

    #[test]
    fn empty_zero_length() {
        let b = Bitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(Bitset::full(0).count_ones(), 0);
    }

    #[test]
    fn intersection_union_difference_counts() {
        let a = Bitset::from_indices(100, [1, 5, 64, 99]);
        let b = Bitset::from_indices(100, [5, 64, 70]);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.union_count(&b), 5);
        assert_eq!(a.difference_count(&b), 2);
        assert_eq!(b.difference_count(&a), 1);
    }

    #[test]
    fn in_place_ops() {
        let mut a = Bitset::from_indices(100, [1, 5, 64, 99]);
        let b = Bitset::from_indices(100, [5, 64, 70]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count_ones(), 5);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![1, 99]);
        a.intersect_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![5, 64]);
    }

    #[test]
    fn subset() {
        let a = Bitset::from_indices(10, [2, 3]);
        let b = Bitset::from_indices(10, [1, 2, 3, 7]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(Bitset::new(10).is_subset_of(&a));
    }

    #[test]
    fn jaccard_values() {
        let a = Bitset::from_indices(10, [0, 1, 2, 3]);
        let b = Bitset::from_indices(10, [2, 3, 4, 5]);
        assert!((a.jaccard(&b) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(Bitset::new(10).jaccard(&Bitset::new(10)), 0.0);
        assert_eq!(a.jaccard(&a), 1.0);
    }

    #[test]
    fn iter_ones_order() {
        let idx = [0usize, 7, 63, 64, 65, 127, 128];
        let b = Bitset::from_indices(200, idx);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), idx.to_vec());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitset::new(10).set(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = Bitset::new(10);
        let b = Bitset::new(11);
        a.intersection_count(&b);
    }

    #[test]
    fn intersection_count_at_least_thresholds() {
        let a = Bitset::from_indices(200, [0, 63, 64, 65, 127, 128, 199]);
        let b = Bitset::from_indices(200, [63, 64, 128, 199, 5]);
        // |a ∩ b| = 4 ({63, 64, 128, 199})
        assert_eq!(a.intersection_count(&b), 4);
        for min in 0..=4 {
            assert!(a.intersection_count_at_least(&b, min), "min={min}");
        }
        assert!(!a.intersection_count_at_least(&b, 5));
        assert!(!a.intersection_count_at_least(&b, 100));
    }

    #[test]
    fn intersection_count_at_least_empty_and_full() {
        let empty = Bitset::new(130);
        let full = Bitset::full(130);
        assert!(empty.intersection_count_at_least(&full, 0));
        assert!(!empty.intersection_count_at_least(&full, 1));
        assert!(full.intersection_count_at_least(&full, 130));
        assert!(!full.intersection_count_at_least(&full, 131));
        let zero = Bitset::new(0);
        assert!(zero.intersection_count_at_least(&zero, 0));
        assert!(!zero.intersection_count_at_least(&zero, 1));
    }

    #[test]
    fn intersection_union_count_matches_separate_kernels() {
        let cases = [
            (Bitset::new(100), Bitset::new(100)),
            (Bitset::full(100), Bitset::full(100)),
            (Bitset::full(128), Bitset::new(128)),
            (
                Bitset::from_indices(200, [1, 5, 64, 99, 128, 150]),
                Bitset::from_indices(200, [5, 64, 70, 150, 199]),
            ),
        ];
        for (a, b) in &cases {
            let (inter, union) = a.intersection_union_count(b);
            assert_eq!(inter, a.intersection_count(b));
            assert_eq!(union, a.union_count(b));
        }
    }

    #[test]
    fn intersect_with_count_fused() {
        let mut a = Bitset::from_indices(200, [1, 5, 64, 99, 128, 150]);
        let b = Bitset::from_indices(200, [5, 64, 70, 150, 199]);
        let expect = a.intersection_count(&b);
        let got = a.intersect_with_count(&b);
        assert_eq!(got, expect);
        assert_eq!(a.count_ones(), expect);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![5, 64, 150]);
        // empty / all-ones edges
        let mut e = Bitset::new(70);
        assert_eq!(e.intersect_with_count(&Bitset::full(70)), 0);
        let mut f = Bitset::full(70);
        assert_eq!(f.intersect_with_count(&Bitset::full(70)), 70);
    }

    #[test]
    fn clear_resets() {
        let mut a = Bitset::from_indices(100, [1, 2, 3]);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a = Bitset::from_indices(100, [1, 2, 3]);
        let b = Bitset::from_indices(100, [7, 64]);
        a.copy_from(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_matches_scalar_on_long_inputs() {
        // Long enough to exercise the 4-wide blocks AND a remainder tail.
        let n = 64 * 37 + 13;
        let a = Bitset::from_indices(n, (0..n).filter(|i| i % 3 == 0));
        let b = Bitset::from_indices(n, (0..n).filter(|i| i % 5 == 0 || i % 7 == 1));
        assert_eq!(a.intersection_count(&b), scalar::intersection_count(&a, &b));
        assert_eq!(a.union_count(&b), scalar::union_count(&a, &b));
        assert_eq!(a.difference_count(&b), scalar::difference_count(&a, &b));
        assert_eq!(
            a.intersection_union_count(&b),
            scalar::intersection_union_count(&a, &b)
        );
        let mut c1 = a.clone();
        let mut c2 = a.clone();
        assert_eq!(
            c1.intersect_with_count(&b),
            scalar::intersect_with_count(&mut c2, &b)
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn batch_counts_match_pairwise() {
        let n = 64 * TILE_WORDS + 777; // cross a tile boundary
        let probe = Bitset::from_indices(n, (0..n).filter(|i| i % 11 == 0));
        let masks: Vec<Bitset> = (2..6)
            .map(|k| Bitset::from_indices(n, (0..n).filter(move |i| i % k == 0)))
            .collect();
        let batch = probe.batch_intersection_counts(&masks);
        for (j, m) in masks.iter().enumerate() {
            assert_eq!(batch[j], probe.intersection_count(m), "mask {j}");
        }
        assert!(Bitset::new(10).batch_intersection_counts(&[]).is_empty());
    }
}
