//! Unsupervised equal-frequency (quantile) binning.

use super::Discretizer;
use crate::schema::ClassId;

/// Places cut points at quantiles so each bin receives approximately the same
/// number of training values. Cuts are placed midway between neighbouring
/// distinct values so a cut never splits equal values across bins.
#[derive(Debug, Clone)]
pub struct EqualFrequency {
    n_bins: usize,
}

impl EqualFrequency {
    /// `n_bins` must be at least 1.
    ///
    /// # Panics
    /// Panics if `n_bins == 0`.
    pub fn new(n_bins: usize) -> Self {
        assert!(n_bins >= 1, "need at least one bin");
        EqualFrequency { n_bins }
    }
}

impl Discretizer for EqualFrequency {
    fn cut_points(&self, values: &[(f64, ClassId)], _n_classes: usize) -> Vec<f64> {
        if values.len() < 2 || self.n_bins < 2 {
            return Vec::new();
        }
        let mut sorted: Vec<f64> = values.iter().map(|&(v, _)| v).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len();
        let mut cuts = Vec::new();
        for b in 1..self.n_bins {
            let idx = (b * n) / self.n_bins;
            if idx == 0 || idx >= n {
                continue;
            }
            // Midpoint between the last value of the previous bin and the
            // first of this one; skip if they're equal (tie spans the cut).
            let (lo, hi) = (sorted[idx - 1], sorted[idx]);
            if hi > lo {
                cuts.push((lo + hi) / 2.0);
            }
        }
        cuts.dedup();
        cuts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[f64]) -> Vec<(f64, ClassId)> {
        v.iter().map(|&x| (x, ClassId(0))).collect()
    }

    #[test]
    fn quartiles() {
        let c =
            EqualFrequency::new(4).cut_points(&vals(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]), 1);
        assert_eq!(c, vec![2.5, 4.5, 6.5]);
    }

    #[test]
    fn ties_do_not_split() {
        let c = EqualFrequency::new(2).cut_points(&vals(&[1.0, 1.0, 1.0, 1.0]), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn skewed_data_balanced_bins() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).powi(2)).collect();
        let c = EqualFrequency::new(4).cut_points(&vals(&data), 1);
        assert_eq!(c.len(), 3);
        // Each bin should get ~25 values.
        for (i, cut) in c.iter().enumerate() {
            let below = data.iter().filter(|&&v| v <= *cut).count();
            assert_eq!(below, 25 * (i + 1));
        }
    }

    #[test]
    fn too_few_values() {
        assert!(EqualFrequency::new(4)
            .cut_points(&vals(&[1.0]), 1)
            .is_empty());
        assert!(EqualFrequency::new(4).cut_points(&[], 1).is_empty());
    }
}
