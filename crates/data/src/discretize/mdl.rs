//! Supervised entropy discretization with the MDL stopping criterion
//! (Fayyad & Irani, IJCAI 1993).
//!
//! Recursively picks the binary cut point minimising the class-information
//! entropy of the induced partition; a cut is accepted only if its
//! information gain exceeds the MDL cost
//! `(log2(N−1) + Δ) / N`, with
//! `Δ = log2(3^k − 2) − (k·Ent(S) − k1·Ent(S1) − k2·Ent(S2))`.
//! Candidate cuts are midpoints between adjacent distinct values (only
//! *boundary points* — positions where the class distribution changes — can
//! be optimal, so only those are inspected).

use super::Discretizer;
use crate::schema::ClassId;

/// Fayyad–Irani MDL discretizer.
#[derive(Debug, Clone, Default)]
pub struct MdlDiscretizer {
    /// Maximum recursion depth (bounds the number of bins at `2^max_depth`).
    /// `usize::MAX` by default — the MDL criterion is the real stop.
    pub max_depth: usize,
}

impl MdlDiscretizer {
    /// MDL discretizer with unbounded depth (criterion-only stopping).
    pub fn new() -> Self {
        MdlDiscretizer {
            max_depth: usize::MAX,
        }
    }

    /// MDL discretizer that additionally stops below `max_depth` recursions.
    pub fn with_max_depth(max_depth: usize) -> Self {
        MdlDiscretizer { max_depth }
    }
}

impl Discretizer for MdlDiscretizer {
    fn cut_points(&self, values: &[(f64, ClassId)], n_classes: usize) -> Vec<f64> {
        let mut sorted: Vec<(f64, ClassId)> = values.to_vec();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        let mut cuts = Vec::new();
        split(&sorted, n_classes, self.max_depth, &mut cuts);
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));
        cuts
    }
}

fn class_counts(values: &[(f64, ClassId)], n_classes: usize) -> Vec<usize> {
    let mut c = vec![0usize; n_classes];
    for &(_, l) in values {
        c[l.index()] += 1;
    }
    c
}

fn entropy_of_counts(counts: &[usize]) -> f64 {
    let n: usize = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

fn n_distinct_classes(counts: &[usize]) -> usize {
    counts.iter().filter(|&&c| c > 0).count()
}

/// Recursive MDL split on a value-sorted slice.
fn split(sorted: &[(f64, ClassId)], n_classes: usize, depth: usize, cuts: &mut Vec<f64>) {
    let n = sorted.len();
    if n < 2 || depth == 0 {
        return;
    }
    let total_counts = class_counts(sorted, n_classes);
    if n_distinct_classes(&total_counts) <= 1 {
        return; // pure segment, nothing to gain
    }
    let ent_s = entropy_of_counts(&total_counts);

    // Scan all boundary positions with running prefix counts.
    let mut left = vec![0usize; n_classes];
    let mut best: Option<(usize, f64)> = None; // (split index, weighted entropy)
    for i in 1..n {
        left[sorted[i - 1].1.index()] += 1;
        if sorted[i].0 <= sorted[i - 1].0 {
            continue; // not a value boundary; a cut here would be ill-defined
        }
        let right: Vec<usize> = total_counts
            .iter()
            .zip(&left)
            .map(|(&t, &l)| t - l)
            .collect();
        let w = (i as f64 * entropy_of_counts(&left) + (n - i) as f64 * entropy_of_counts(&right))
            / n as f64;
        if best.is_none_or(|(_, bw)| w < bw - 1e-12) {
            best = Some((i, w));
        }
    }
    let Some((split_at, weighted)) = best else {
        return; // constant column
    };

    let gain = ent_s - weighted;
    let left_slice = &sorted[..split_at];
    let right_slice = &sorted[split_at..];
    let k = n_distinct_classes(&total_counts) as f64;
    let k1 = n_distinct_classes(&class_counts(left_slice, n_classes)) as f64;
    let k2 = n_distinct_classes(&class_counts(right_slice, n_classes)) as f64;
    let ent1 = entropy_of_counts(&class_counts(left_slice, n_classes));
    let ent2 = entropy_of_counts(&class_counts(right_slice, n_classes));
    let delta = (3f64.powf(k) - 2.0).log2() - (k * ent_s - k1 * ent1 - k2 * ent2);
    let threshold = ((n as f64 - 1.0).log2() + delta) / n as f64;

    if gain <= threshold {
        return; // MDL: cut not worth encoding
    }
    let cut = (sorted[split_at - 1].0 + sorted[split_at].0) / 2.0;
    cuts.push(cut);
    split(left_slice, n_classes, depth - 1, cuts);
    split(right_slice, n_classes, depth - 1, cuts);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled(pairs: &[(f64, u32)]) -> Vec<(f64, ClassId)> {
        pairs.iter().map(|&(v, l)| (v, ClassId(l))).collect()
    }

    #[test]
    fn clean_two_class_split() {
        // Class 0 on [0,10), class 1 on [10,20): one cut near 9.5.
        let data: Vec<(f64, u32)> = (0..20)
            .map(|i| (i as f64, if i < 10 { 0 } else { 1 }))
            .collect();
        let cuts = MdlDiscretizer::new().cut_points(&labelled(&data), 2);
        assert_eq!(cuts.len(), 1);
        assert!((cuts[0] - 9.5).abs() < 1e-9);
    }

    #[test]
    fn pure_column_no_cut() {
        let data: Vec<(f64, u32)> = (0..20).map(|i| (i as f64, 0)).collect();
        assert!(MdlDiscretizer::new()
            .cut_points(&labelled(&data), 2)
            .is_empty());
    }

    #[test]
    fn random_labels_rejected_by_mdl() {
        // Alternating labels carry no information w.r.t. value: the best cut
        // has negligible gain and MDL should refuse it.
        let data: Vec<(f64, u32)> = (0..40).map(|i| (i as f64, (i % 2) as u32)).collect();
        let cuts = MdlDiscretizer::new().cut_points(&labelled(&data), 2);
        assert!(cuts.is_empty(), "got {cuts:?}");
    }

    #[test]
    fn three_segments_two_cuts() {
        let mut data = Vec::new();
        for i in 0..30 {
            data.push((i as f64, 0u32));
        }
        for i in 30..60 {
            data.push((i as f64, 1));
        }
        for i in 60..90 {
            data.push((i as f64, 0));
        }
        let cuts = MdlDiscretizer::new().cut_points(&labelled(&data), 2);
        assert_eq!(cuts.len(), 2);
        assert!((cuts[0] - 29.5).abs() < 1e-9);
        assert!((cuts[1] - 59.5).abs() < 1e-9);
    }

    #[test]
    fn max_depth_caps_cuts() {
        let mut data = Vec::new();
        for seg in 0..8 {
            for i in 0..20 {
                data.push(((seg * 20 + i) as f64, (seg % 2) as u32));
            }
        }
        let unbounded = MdlDiscretizer::new().cut_points(&labelled(&data), 2);
        assert!(unbounded.len() >= 7);
        let capped = MdlDiscretizer::with_max_depth(1).cut_points(&labelled(&data), 2);
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn ties_never_produce_cut_between_equal_values() {
        let data = labelled(&[(1.0, 0), (1.0, 1), (1.0, 0), (2.0, 1), (2.0, 1)]);
        let cuts = MdlDiscretizer::new().cut_points(&data, 2);
        for c in cuts {
            assert!(c > 1.0 && c < 2.0);
        }
    }
}
