//! Unsupervised equal-width binning.

use super::Discretizer;
use crate::schema::ClassId;

/// Splits `[min, max]` into `n_bins` intervals of equal width.
///
/// Degenerate columns (constant, or fewer distinct values than bins) yield
/// fewer cut points; a fully constant column yields none (a single bin).
#[derive(Debug, Clone)]
pub struct EqualWidth {
    n_bins: usize,
}

impl EqualWidth {
    /// `n_bins` must be at least 1.
    ///
    /// # Panics
    /// Panics if `n_bins == 0`.
    pub fn new(n_bins: usize) -> Self {
        assert!(n_bins >= 1, "need at least one bin");
        EqualWidth { n_bins }
    }
}

impl Discretizer for EqualWidth {
    fn cut_points(&self, values: &[(f64, ClassId)], _n_classes: usize) -> Vec<f64> {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(v, _) in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || !hi.is_finite() || lo == hi {
            return Vec::new();
        }
        let width = (hi - lo) / self.n_bins as f64;
        (1..self.n_bins)
            .map(|i| lo + width * i as f64)
            .filter(|c| *c > lo && *c < hi)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[f64]) -> Vec<(f64, ClassId)> {
        v.iter().map(|&x| (x, ClassId(0))).collect()
    }

    #[test]
    fn four_bins_three_cuts() {
        let c = EqualWidth::new(4).cut_points(&vals(&[0.0, 8.0]), 1);
        assert_eq!(c, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn constant_column_no_cuts() {
        let c = EqualWidth::new(4).cut_points(&vals(&[3.0, 3.0, 3.0]), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn empty_column_no_cuts() {
        let c = EqualWidth::new(4).cut_points(&[], 1);
        assert!(c.is_empty());
    }

    #[test]
    fn one_bin_no_cuts() {
        let c = EqualWidth::new(1).cut_points(&vals(&[0.0, 10.0]), 1);
        assert!(c.is_empty());
    }
}
