//! Discretization of numeric attributes (paper §2: "For numerical
//! attributes, the continuous values are discretized first").
//!
//! Three algorithms are provided:
//!
//! * [`EqualWidth`] — unsupervised, fixed number of equal-width bins;
//! * [`EqualFrequency`] — unsupervised, quantile bins;
//! * [`MdlDiscretizer`] — the supervised Fayyad–Irani entropy/MDL method,
//!   the de-facto standard preprocessing for associative classification
//!   (and what the LUCS-KDD discretized UCI datasets referenced by the
//!   paper's footnote use).
//!
//! All discretizers produce *cut points*; a value `v` falls in bin
//! `#{cuts < v}` — bins are `(-∞, c_0], (c_0, c_1], …, (c_{k-1}, ∞)`.
//! Cut points are fitted on training data and replayed on test data via
//! [`DiscretizationModel`].

mod equal_freq;
mod equal_width;
mod mdl;

pub use equal_freq::EqualFrequency;
pub use equal_width::EqualWidth;
pub use mdl::MdlDiscretizer;

use crate::dataset::{Dataset, Value};
use crate::schema::{Attribute, AttributeKind, ClassId, Schema};

/// A supervised-or-not algorithm that turns a numeric column into cut points.
pub trait Discretizer {
    /// Computes sorted, strictly increasing cut points for one column.
    ///
    /// `values` are the non-missing cells of the column paired with their
    /// class labels (supervised methods use them, unsupervised ignore them).
    /// Returning an empty vector collapses the column into a single bin.
    fn cut_points(&self, values: &[(f64, ClassId)], n_classes: usize) -> Vec<f64>;
}

/// Fitted cut points for every numeric attribute of a schema, replayable on
/// unseen data.
#[derive(Debug, Clone)]
pub struct DiscretizationModel {
    /// `cuts[a]` is `Some(cut_points)` for numeric attributes, `None` for
    /// categorical ones.
    cuts: Vec<Option<Vec<f64>>>,
}

impl DiscretizationModel {
    /// Fits a discretizer on every numeric column of `data`.
    pub fn fit<D: Discretizer>(data: &Dataset, discretizer: &D) -> Self {
        let n_classes = data.schema.n_classes();
        let cuts = data
            .schema
            .attributes
            .iter()
            .enumerate()
            .map(|(a, attr)| {
                if !attr.is_numeric() {
                    return None;
                }
                let vals: Vec<(f64, ClassId)> = data
                    .numeric_column(a)
                    .into_iter()
                    .map(|(r, v)| (v, data.labels[r]))
                    .collect();
                let mut cp = discretizer.cut_points(&vals, n_classes);
                cp.retain(|v| v.is_finite());
                cp.sort_by(|x, y| x.partial_cmp(y).expect("finite cut points"));
                cp.dedup();
                Some(cp)
            })
            .collect();
        DiscretizationModel { cuts }
    }

    /// The full per-attribute cut-point table — the complete fitted state,
    /// for model serialization.
    pub fn all_cuts(&self) -> &[Option<Vec<f64>>] {
        &self.cuts
    }

    /// Reconstructs a model from serialized state: `cuts[a]` is
    /// `Some(sorted cut points)` for numeric attributes, `None` for
    /// categorical ones.
    pub fn from_cuts(cuts: Vec<Option<Vec<f64>>>) -> Self {
        DiscretizationModel { cuts }
    }

    /// Number of bins for attribute `a` (1 + number of cut points), or `None`
    /// if the attribute was categorical.
    pub fn n_bins(&self, a: usize) -> Option<usize> {
        self.cuts[a].as_ref().map(|c| c.len() + 1)
    }

    /// The cut points of numeric attribute `a`, if any.
    pub fn cuts(&self, a: usize) -> Option<&[f64]> {
        self.cuts[a].as_deref()
    }

    /// Bin index of value `v` under attribute `a`'s cut points.
    ///
    /// # Panics
    /// Panics if attribute `a` was categorical at fit time.
    pub fn bin(&self, a: usize, v: f64) -> usize {
        let cuts = self.cuts[a].as_ref().expect("attribute was categorical");
        // bins: (-inf, c0], (c0, c1], ..., (c_{k-1}, inf)
        cuts.partition_point(|&c| c < v)
    }

    /// Applies the model: numeric columns become categorical bin columns,
    /// categorical columns pass through unchanged.
    pub fn apply(&self, data: &Dataset) -> Dataset {
        let attributes: Vec<Attribute> = data
            .schema
            .attributes
            .iter()
            .enumerate()
            .map(|(a, attr)| match &self.cuts[a] {
                None => attr.clone(),
                Some(cuts) => Attribute {
                    name: attr.name.clone(),
                    kind: AttributeKind::Categorical {
                        values: bin_names(cuts),
                    },
                },
            })
            .collect();
        let schema = Schema::new(attributes, data.schema.class_names.clone());
        let rows = data
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(a, cell)| match (cell, &self.cuts[a]) {
                        (Value::Num(v), Some(_)) => Value::Cat(self.bin(a, *v) as u32),
                        (other, _) => *other,
                    })
                    .collect()
            })
            .collect();
        Dataset::new(schema, rows, data.labels.clone())
    }
}

fn bin_names(cuts: &[f64]) -> Vec<String> {
    if cuts.is_empty() {
        return vec!["all".to_string()];
    }
    let mut names = Vec::with_capacity(cuts.len() + 1);
    names.push(format!("<={:.4}", cuts[0]));
    for w in cuts.windows(2) {
        names.push(format!("({:.4},{:.4}]", w[0], w[1]));
    }
    names.push(format!(">{:.4}", cuts[cuts.len() - 1]));
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn numeric_dataset(vals: &[f64], labels: &[u32]) -> Dataset {
        let schema = Schema::new(
            vec![Attribute::numeric("x")],
            vec!["c0".into(), "c1".into()],
        );
        Dataset::new(
            schema,
            vals.iter().map(|&v| vec![Value::Num(v)]).collect(),
            labels.iter().map(|&l| ClassId(l)).collect(),
        )
    }

    #[test]
    fn model_bins_and_apply() {
        let d = numeric_dataset(&[1.0, 2.0, 3.0, 4.0], &[0, 0, 1, 1]);
        let (cat, model) = d.discretize(&EqualWidth::new(2));
        assert_eq!(model.n_bins(0), Some(2));
        assert!(!cat.schema.has_numeric());
        // values 1,2 -> bin 0; 3,4 -> bin 1 with cut at 2.5
        let bins: Vec<u32> = cat
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Cat(b) => b,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(bins, vec![0, 0, 1, 1]);
    }

    #[test]
    fn bin_boundaries_inclusive_left() {
        let d = numeric_dataset(&[0.0, 10.0], &[0, 1]);
        let (_, model) = d.discretize(&EqualWidth::new(2));
        // single cut at 5.0, bins (-inf,5], (5,inf)
        assert_eq!(model.bin(0, 5.0), 0);
        assert_eq!(model.bin(0, 5.0001), 1);
        assert_eq!(model.bin(0, -100.0), 0);
        assert_eq!(model.bin(0, 100.0), 1);
    }

    #[test]
    fn replay_on_unseen_data() {
        let train = numeric_dataset(&[1.0, 2.0, 9.0, 10.0], &[0, 0, 1, 1]);
        let (_, model) = train.discretize(&EqualWidth::new(2));
        let test = numeric_dataset(&[0.5, 7.0], &[0, 1]);
        let applied = model.apply(&test);
        let bins: Vec<u32> = applied
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Cat(b) => b,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(bins, vec![0, 1]);
    }

    #[test]
    fn bin_names_cover_all() {
        assert_eq!(bin_names(&[]), vec!["all"]);
        let n = bin_names(&[1.0, 2.0]);
        assert_eq!(n.len(), 3);
        assert!(n[0].starts_with("<="));
        assert!(n[2].starts_with('>'));
    }

    #[test]
    fn categorical_columns_pass_through() {
        let schema = Schema::new(
            vec![Attribute::categorical_anon("a", 2), Attribute::numeric("x")],
            vec!["c0".into(), "c1".into()],
        );
        let d = Dataset::new(
            schema,
            vec![
                vec![Value::Cat(0), Value::Num(1.0)],
                vec![Value::Cat(1), Value::Num(9.0)],
            ],
            vec![ClassId(0), ClassId(1)],
        );
        let (cat, model) = d.discretize(&EqualWidth::new(2));
        assert_eq!(model.n_bins(0), None);
        assert_eq!(cat.rows[0][0], Value::Cat(0));
        assert_eq!(cat.rows[1][1], Value::Cat(1));
    }
}
