//! Sparse binary feature matrices — the representation classifiers consume.
//!
//! After feature selection, the dataset `D` is transformed into `D'` over the
//! feature space `I ∪ Fs` (paper §2): every single item is a feature, and
//! every selected pattern is a feature that fires when the transaction
//! contains all of the pattern's items. Rows are sparse lists of active
//! feature indices, which suits both the linear SVM (sparse dot products)
//! and the decision tree (per-feature index sets).

use crate::schema::ClassId;

/// A labelled sparse binary matrix: each row lists its active feature ids,
/// strictly ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseBinaryMatrix {
    /// Total number of features `d'`.
    pub n_features: usize,
    /// Active feature ids per row (each strictly ascending).
    pub rows: Vec<Vec<u32>>,
    /// One label per row.
    pub labels: Vec<ClassId>,
    /// Number of classes.
    pub n_classes: usize,
}

impl SparseBinaryMatrix {
    /// Creates a matrix, validating shapes.
    ///
    /// # Panics
    /// Panics if rows/labels lengths differ, a feature id is out of range,
    /// a row is not strictly ascending, or a label is out of range.
    pub fn new(
        n_features: usize,
        rows: Vec<Vec<u32>>,
        labels: Vec<ClassId>,
        n_classes: usize,
    ) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        for (r, row) in rows.iter().enumerate() {
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {r} not strictly ascending");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < n_features, "row {r} feature out of range");
            }
        }
        for (r, l) in labels.iter().enumerate() {
            assert!(l.index() < n_classes, "row {r} label out of range");
        }
        SparseBinaryMatrix {
            n_features,
            rows,
            labels,
            n_classes,
        }
    }

    /// Number of rows `n`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `true` iff feature `f` is active in row `r`.
    pub fn get(&self, r: usize, f: u32) -> bool {
        self.rows[r].binary_search(&f).is_ok()
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for l in &self.labels {
            counts[l.index()] += 1;
        }
        counts
    }

    /// The sub-matrix at the given row indices (cloned rows).
    pub fn subset(&self, indices: &[usize]) -> SparseBinaryMatrix {
        SparseBinaryMatrix {
            n_features: self.n_features,
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Column view: for each feature, the sorted list of rows where it is
    /// active. Used by the decision tree for fast split evaluation.
    pub fn columns(&self) -> Vec<Vec<u32>> {
        let mut cols = vec![Vec::new(); self.n_features];
        for (r, row) in self.rows.iter().enumerate() {
            for &f in row {
                cols[f as usize].push(r as u32);
            }
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseBinaryMatrix {
        SparseBinaryMatrix::new(
            4,
            vec![vec![0, 2], vec![1], vec![0, 1, 3], vec![]],
            vec![ClassId(0), ClassId(1), ClassId(0), ClassId(1)],
            2,
        )
    }

    #[test]
    fn get_and_counts() {
        let m = sample();
        assert!(m.get(0, 0) && m.get(0, 2) && !m.get(0, 1));
        assert!(!m.get(3, 0));
        assert_eq!(m.class_counts(), vec![2, 2]);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn columns_roundtrip() {
        let m = sample();
        let cols = m.columns();
        assert_eq!(cols[0], vec![0, 2]);
        assert_eq!(cols[1], vec![1, 2]);
        assert_eq!(cols[2], vec![0]);
        assert_eq!(cols[3], vec![2]);
    }

    #[test]
    fn subset_rows() {
        let m = sample().subset(&[2, 0]);
        assert_eq!(m.rows[0], vec![0, 1, 3]);
        assert_eq!(m.labels, vec![ClassId(0), ClassId(0)]);
    }

    #[test]
    #[should_panic(expected = "feature out of range")]
    fn oob_feature_panics() {
        SparseBinaryMatrix::new(2, vec![vec![5]], vec![ClassId(0)], 1);
    }

    #[test]
    #[should_panic(expected = "not strictly ascending")]
    fn unsorted_row_panics() {
        SparseBinaryMatrix::new(4, vec![vec![2, 1]], vec![ClassId(0)], 1);
    }
}
