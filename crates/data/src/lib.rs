//! # dfp-data — dataset substrate for discriminative frequent pattern classification
//!
//! This crate provides everything the ICDE'07 framework needs *below* the
//! mining layer:
//!
//! * a relational [`Dataset`] model with categorical and numeric attributes
//!   ([`schema`], [`dataset`]);
//! * supervised and unsupervised [`discretize`] algorithms (equal-width,
//!   equal-frequency, Fayyad–Irani MDL) that turn numeric attributes into
//!   categorical bins, as required by the paper's problem formulation (§2:
//!   "For numerical attributes, the continuous values are discretized first");
//! * the `(attribute, value) → item` mapping and the resulting binary
//!   [`transactions::TransactionSet`] representation `D ⊆ B^d`;
//! * a compact [`bitset::Bitset`] used throughout the workspace for tidsets
//!   (support counting, Jaccard redundancy, database coverage);
//! * seeded [`synth`]etic dataset generators replaying the *profiles* (size,
//!   arity, class priors, density) of the 22 UCI datasets used in the paper's
//!   evaluation — see `DESIGN.md` §4 for why this substitution preserves the
//!   paper's claims;
//! * [`split`] utilities: stratified k-fold cross validation and holdout
//!   splits;
//! * a dependency-free [`csv`] reader/writer so real UCI files can be dropped
//!   in when available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arff;
pub mod bitset;
pub mod csv;
pub mod dataset;
pub mod discretize;
pub mod features;
pub mod ingest;
mod kernels;
pub mod rowset;
pub mod schema;
pub mod split;
pub mod synth;
pub mod transactions;

pub use bitset::Bitset;
pub use dataset::{Dataset, Value};
pub use rowset::{BitsetMode, RowSet};
pub use schema::{Attribute, AttributeKind, ClassId, Schema};
pub use transactions::{Item, ItemMap, Transaction, TransactionSet};
