//! Relational datasets: rows of typed values plus class labels.
//!
//! The lifecycle mirrors the paper's problem formulation (§2):
//!
//! 1. a raw [`Dataset`] may contain numeric attributes;
//! 2. [`Dataset::discretize`] replaces every numeric column with a
//!    categorical binned column (using any [`crate::discretize::Discretizer`]);
//! 3. [`Dataset::to_transactions`] maps each `(attribute, value)` pair to a
//!    distinct item and emits the binary representation
//!    `D = {x_i, y_i}` with `x_i ∈ B^d`.

use crate::discretize::{DiscretizationModel, Discretizer};
use crate::schema::{Attribute, AttributeKind, ClassId, Schema};
use crate::transactions::{Item, ItemMap, TransactionSet};

/// A single cell value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Index into the attribute's categorical value list.
    Cat(u32),
    /// Raw numeric value.
    Num(f64),
    /// Missing value; contributes no item during transaction conversion.
    Missing,
}

/// A labelled relational dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Column schema and class names.
    pub schema: Schema,
    /// Row-major cells; every row has `schema.n_attributes()` values.
    pub rows: Vec<Vec<Value>>,
    /// One label per row.
    pub labels: Vec<ClassId>,
}

impl Dataset {
    /// Creates a dataset, validating row shapes and label ranges.
    ///
    /// # Panics
    /// Panics if any row has the wrong width, any label is out of range, or
    /// any categorical cell index exceeds the attribute arity.
    pub fn new(schema: Schema, rows: Vec<Vec<Value>>, labels: Vec<ClassId>) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                schema.n_attributes(),
                "row {r} has wrong number of cells"
            );
            for (a, cell) in row.iter().enumerate() {
                match (cell, &schema.attributes[a].kind) {
                    (Value::Cat(v), AttributeKind::Categorical { values }) => {
                        assert!(
                            (*v as usize) < values.len(),
                            "row {r} attr {a}: categorical index {v} out of range"
                        );
                    }
                    (Value::Num(_), AttributeKind::Numeric) | (Value::Missing, _) => {}
                    (Value::Cat(_), AttributeKind::Numeric) => {
                        panic!("row {r} attr {a}: categorical value in numeric column")
                    }
                    (Value::Num(_), AttributeKind::Categorical { .. }) => {
                        panic!("row {r} attr {a}: numeric value in categorical column")
                    }
                }
            }
        }
        for (r, l) in labels.iter().enumerate() {
            assert!(
                l.index() < schema.n_classes(),
                "row {r}: label {l} out of range"
            );
        }
        Dataset {
            schema,
            rows,
            labels,
        }
    }

    /// Number of instances `n`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Per-class instance counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.schema.n_classes()];
        for l in &self.labels {
            counts[l.index()] += 1;
        }
        counts
    }

    /// The numeric column `a` as `(row_index, value)` pairs, skipping missing cells.
    ///
    /// # Panics
    /// Panics if attribute `a` is not numeric.
    pub fn numeric_column(&self, a: usize) -> Vec<(usize, f64)> {
        assert!(
            self.schema.attributes[a].is_numeric(),
            "attribute {a} is not numeric"
        );
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(r, row)| match row[a] {
                Value::Num(v) => Some((r, v)),
                _ => None,
            })
            .collect()
    }

    /// Fits `discretizer` on every numeric column and returns both the
    /// all-categorical dataset and the fitted [`DiscretizationModel`] (so the
    /// same cut points can be replayed on held-out test data — fitting on
    /// train folds only is what keeps cross-validation honest).
    pub fn discretize<D: Discretizer>(&self, discretizer: &D) -> (Dataset, DiscretizationModel) {
        let model = DiscretizationModel::fit(self, discretizer);
        (model.apply(self), model)
    }

    /// Converts an all-categorical dataset into transactions, building the
    /// `(attribute, value) → item` map.
    ///
    /// Missing cells simply contribute no item, matching the standard
    /// treatment in associative classification.
    ///
    /// # Panics
    /// Panics if any attribute is still numeric (discretize first).
    pub fn to_transactions(&self) -> (TransactionSet, ItemMap) {
        let map = ItemMap::from_schema(&self.schema);
        let transactions = self
            .rows
            .iter()
            .map(|row| {
                let mut items: Vec<Item> = row
                    .iter()
                    .enumerate()
                    .filter_map(|(a, cell)| match cell {
                        Value::Cat(v) if map.has_items(a) => Some(map.item(a, *v as usize)),
                        Value::Cat(_) | Value::Missing => None,
                        Value::Num(_) => panic!("attribute {a} not discretized"),
                    })
                    .collect();
                items.sort_unstable();
                items
            })
            .collect();
        (
            TransactionSet::new(
                map.n_items(),
                self.schema.n_classes(),
                transactions,
                self.labels.clone(),
            ),
            map,
        )
    }

    /// Returns the sub-dataset at the given row indices (cloned rows).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }
}

/// Convenience constructor for all-categorical test datasets: each row is a
/// vector of value indices, attributes get anonymous names/values.
pub fn categorical_dataset(arities: &[usize], n_classes: usize, rows: &[(&[u32], u32)]) -> Dataset {
    let schema = Schema::new(
        arities
            .iter()
            .enumerate()
            .map(|(i, &n)| Attribute::categorical_anon(format!("a{i}"), n))
            .collect(),
        (0..n_classes).map(|i| format!("c{i}")).collect(),
    );
    let (data, labels) = rows
        .iter()
        .map(|(vals, label)| {
            (
                vals.iter().map(|&v| Value::Cat(v)).collect::<Vec<_>>(),
                ClassId(*label),
            )
        })
        .unzip();
    Dataset::new(schema, data, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let d = categorical_dataset(&[2, 3], 2, &[(&[0, 1], 0), (&[1, 2], 1), (&[0, 0], 0)]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.class_counts(), vec![2, 1]);
    }

    #[test]
    fn to_transactions_items() {
        let d = categorical_dataset(&[2, 3], 2, &[(&[0, 1], 0), (&[1, 2], 1)]);
        let (ts, map) = d.to_transactions();
        assert_eq!(map.n_items(), 5);
        // attr0 items: 0,1 ; attr1 items: 2,3,4
        assert_eq!(ts.transaction(0), &[Item(0), Item(3)]);
        assert_eq!(ts.transaction(1), &[Item(1), Item(4)]);
    }

    #[test]
    fn missing_values_skip_items() {
        let schema = Schema::new(
            vec![Attribute::categorical_anon("a", 2)],
            vec!["c0".into(), "c1".into()],
        );
        let d = Dataset::new(
            schema,
            vec![vec![Value::Missing], vec![Value::Cat(1)]],
            vec![ClassId(0), ClassId(1)],
        );
        let (ts, _) = d.to_transactions();
        assert!(ts.transaction(0).is_empty());
        assert_eq!(ts.transaction(1), &[Item(1)]);
    }

    #[test]
    fn subset_preserves_rows() {
        let d = categorical_dataset(&[2], 2, &[(&[0], 0), (&[1], 1), (&[0], 1)]);
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![ClassId(1), ClassId(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        categorical_dataset(&[2], 1, &[(&[0], 1)]);
    }

    #[test]
    #[should_panic(expected = "categorical index")]
    fn bad_cat_index_panics() {
        categorical_dataset(&[2], 1, &[(&[5], 0)]);
    }
}
