//! Adaptive row-mask representation: dense [`Bitset`] or roaring-style
//! [`CompressedBitmap`], selected per column from measured density.
//!
//! The dense representation costs `len / 8` bytes regardless of how many
//! rows an item actually covers; on large sparse transaction sets almost
//! every word the intersection kernels stream is zero. The compressed
//! representation splits the row space into 2^16-bit chunks and stores each
//! non-empty chunk as either a sorted `u16` **array container** (at most
//! [`ARRAY_MAX`] = 4096 entries, 2 bytes per set bit) or a full 8 KiB
//! **bitmap container** — the classic Roaring layout, picked per chunk so a
//! container never costs more than the denser of the two encodings.
//!
//! [`RowSet`] wraps the two behind one kernel set so miners and selectors
//! are representation-agnostic. Which side a column lands on is decided at
//! build time by [`mode`]: `DFP_BITSET=dense|compressed|auto` (or the
//! programmatic [`set_mode_override`]), where `auto` compresses a column
//! only when the universe is at least [`ARRAY_MAX`] rows *and* its density
//! is ≤ 1/64 — above that, the dense kernels' branchless word loops win.

use crate::bitset::Bitset;
use crate::kernels;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Bits per chunk of the two-level layout.
const CHUNK_BITS: usize = 1 << 16;
/// Words per bitmap container (`CHUNK_BITS / 64`).
const CHUNK_WORDS: usize = CHUNK_BITS / 64;
/// Maximum cardinality of an array container. At 4096 × 2 B an array
/// container reaches the 8 KiB of a bitmap container — past this point the
/// bitmap is both smaller and faster, so the container flips.
pub const ARRAY_MAX: usize = 4096;

/// Which row-mask representation new columns are built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitsetMode {
    /// Always the flat `u64`-block [`Bitset`].
    Dense,
    /// Always the two-level [`CompressedBitmap`].
    Compressed,
    /// Per column: compressed iff `len >= 4096` and density ≤ 1/64.
    Auto,
}

/// 0 = no override, else `BitsetMode` discriminant + 1.
static MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ENV_MODE: OnceLock<BitsetMode> = OnceLock::new();

/// Forces a representation mode for subsequently built [`RowSet`]s,
/// overriding the `DFP_BITSET` environment variable; `None` removes the
/// override. Process-global — intended for tests and benches.
pub fn set_mode_override(mode: Option<BitsetMode>) {
    let v = match mode {
        None => 0,
        Some(BitsetMode::Dense) => 1,
        Some(BitsetMode::Compressed) => 2,
        Some(BitsetMode::Auto) => 3,
    };
    MODE_OVERRIDE.store(v, Ordering::SeqCst);
}

/// The active representation mode: programmatic override, else the
/// `DFP_BITSET` environment variable (`dense` / `compressed` / `auto`,
/// read once; unrecognised values fall back to `auto`), else `auto`.
pub fn mode() -> BitsetMode {
    match MODE_OVERRIDE.load(Ordering::SeqCst) {
        1 => return BitsetMode::Dense,
        2 => return BitsetMode::Compressed,
        3 => return BitsetMode::Auto,
        _ => {}
    }
    *ENV_MODE.get_or_init(|| match std::env::var("DFP_BITSET").as_deref() {
        Ok("dense") => BitsetMode::Dense,
        Ok("compressed") => BitsetMode::Compressed,
        _ => BitsetMode::Auto,
    })
}

/// The `auto` container-selection rule: compress a column of `count` set
/// bits over a `len`-row universe iff the universe is big enough for the
/// chunked layout to pay for itself and the column is sparse (≤ 1/64).
///
/// The 1/64 threshold is where sorted-array merges stop beating the dense
/// word kernels: at ~1.5% density an array container holds ~1000 of the
/// chunk's 65536 bits, and a two-pointer merge over two such arrays costs
/// about as much as AND+popcount over the chunk's 1024 words. Denser
/// columns stay dense.
pub fn auto_compress(len: usize, count: usize) -> bool {
    len >= ARRAY_MAX && count.saturating_mul(64) <= len
}

/// One non-empty 2^16-bit chunk.
#[derive(Clone, PartialEq, Eq)]
struct Chunk {
    /// Chunk index: covers bits `[key << 16, (key + 1) << 16)`.
    key: u32,
    /// Cached cardinality (always `> 0`).
    card: u32,
    data: Container,
}

#[derive(Clone, PartialEq, Eq)]
enum Container {
    /// Sorted low-16-bit values; `len <= ARRAY_MAX`.
    Array(Vec<u16>),
    /// `CHUNK_WORDS` words; used when `card > ARRAY_MAX`.
    Bitmap(Box<[u64]>),
}

/// A roaring-style compressed set of row indices in `[0, len)`.
#[derive(Clone, PartialEq, Eq)]
pub struct CompressedBitmap {
    len: usize,
    chunks: Vec<Chunk>,
}

impl std::fmt::Debug for CompressedBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter_ones()).finish()
    }
}

/// Two-pointer intersection size of sorted `u16` slices.
fn array_merge_count(a: &[u16], b: &[u16]) -> usize {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Two-pointer intersection of sorted `u16` slices.
fn array_merge(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[inline]
fn bitmap_contains(bm: &[u64], v: u16) -> bool {
    (bm[(v >> 6) as usize] >> (v & 63)) & 1 == 1
}

/// Bitmap container words → sorted value array (caller knows `card <=
/// ARRAY_MAX`).
fn bitmap_to_array(bm: &[u64], card: usize) -> Vec<u16> {
    let mut out = Vec::with_capacity(card);
    for (wi, &w) in bm.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            out.push((wi * 64 + w.trailing_zeros() as usize) as u16);
            w &= w - 1;
        }
    }
    out
}

fn array_to_bitmap(arr: &[u16]) -> Box<[u64]> {
    let mut bm = vec![0u64; CHUNK_WORDS].into_boxed_slice();
    for &v in arr {
        bm[(v >> 6) as usize] |= 1u64 << (v & 63);
    }
    bm
}

/// Normalises a raw (values, card) pair into the cheaper container.
fn normalize(values: Vec<u16>) -> Option<Chunk> {
    if values.is_empty() {
        return None;
    }
    debug_assert!(values.len() <= ARRAY_MAX);
    Some(Chunk {
        key: 0, // caller fills in
        card: values.len() as u32,
        data: Container::Array(values),
    })
}

impl CompressedBitmap {
    /// Builds from a dense bitset.
    pub fn from_bitset(b: &Bitset) -> Self {
        let blocks = b.blocks();
        let mut chunks = Vec::new();
        let mut start = 0usize;
        let mut key = 0u32;
        while start < blocks.len() {
            let end = (start + CHUNK_WORDS).min(blocks.len());
            let slice = &blocks[start..end];
            let card = kernels::count(slice);
            if card > ARRAY_MAX {
                let mut bm = vec![0u64; CHUNK_WORDS].into_boxed_slice();
                bm[..slice.len()].copy_from_slice(slice);
                chunks.push(Chunk {
                    key,
                    card: card as u32,
                    data: Container::Bitmap(bm),
                });
            } else if card > 0 {
                chunks.push(Chunk {
                    key,
                    card: card as u32,
                    data: Container::Array(bitmap_to_array(slice, card)),
                });
            }
            start = end;
            key += 1;
        }
        CompressedBitmap {
            len: b.len(),
            chunks,
        }
    }

    /// Builds from ascending row indices (all `< len`).
    ///
    /// # Panics
    /// Panics if an index is `>= len` or the sequence is not ascending.
    pub fn from_sorted_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut chunks: Vec<Chunk> = Vec::new();
        let mut cur_key: Option<u32> = None;
        let mut cur: Vec<u16> = Vec::new();
        let mut cur_bm: Option<Box<[u64]>> = None;
        let mut cur_card = 0usize;
        let mut last: Option<usize> = None;

        let mut flush =
            |key: Option<u32>, arr: &mut Vec<u16>, bm: &mut Option<Box<[u64]>>, card: usize| {
                let Some(key) = key else { return };
                if let Some(bm) = bm.take() {
                    chunks.push(Chunk {
                        key,
                        card: card as u32,
                        data: Container::Bitmap(bm),
                    });
                } else if let Some(mut c) = normalize(std::mem::take(arr)) {
                    c.key = key;
                    chunks.push(c);
                }
            };

        for i in indices {
            assert!(i < len, "row index {i} out of range {len}");
            assert!(last.is_none_or(|p| p < i), "indices must be ascending");
            last = Some(i);
            let key = (i / CHUNK_BITS) as u32;
            let low = (i % CHUNK_BITS) as u16;
            if cur_key != Some(key) {
                flush(cur_key, &mut cur, &mut cur_bm, cur_card);
                cur_key = Some(key);
                cur.clear();
                cur_bm = None;
                cur_card = 0;
            }
            if let Some(bm) = &mut cur_bm {
                bm[(low >> 6) as usize] |= 1u64 << (low & 63);
            } else {
                cur.push(low);
                if cur.len() > ARRAY_MAX {
                    cur_bm = Some(array_to_bitmap(&cur));
                    cur.clear();
                }
            }
            cur_card += 1;
        }
        flush(cur_key, &mut cur, &mut cur_bm, cur_card);
        CompressedBitmap { len, chunks }
    }

    /// Number of addressable rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no row is set.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Number of set rows (sum of cached container cardinalities).
    pub fn count_ones(&self) -> usize {
        self.chunks.iter().map(|c| c.card as usize).sum()
    }

    /// Membership test.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "row index {i} out of range {}", self.len);
        let key = (i / CHUNK_BITS) as u32;
        let low = (i % CHUNK_BITS) as u16;
        match self.chunks.binary_search_by_key(&key, |c| c.key) {
            Err(_) => false,
            Ok(ci) => match &self.chunks[ci].data {
                Container::Array(a) => a.binary_search(&low).is_ok(),
                Container::Bitmap(bm) => bitmap_contains(bm, low),
            },
        }
    }

    /// Expands into a dense bitset.
    pub fn to_bitset(&self) -> Bitset {
        let mut b = Bitset::new(self.len);
        let blocks = b.blocks_mut();
        for c in &self.chunks {
            let start = c.key as usize * CHUNK_WORDS;
            match &c.data {
                Container::Array(a) => {
                    for &v in a {
                        blocks[start + (v >> 6) as usize] |= 1u64 << (v & 63);
                    }
                }
                Container::Bitmap(bm) => {
                    let end = (start + CHUNK_WORDS).min(blocks.len());
                    blocks[start..end].copy_from_slice(&bm[..end - start]);
                }
            }
        }
        b
    }

    /// `|self ∩ other|`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersection_count(&self, other: &CompressedBitmap) -> usize {
        self.check_same_len_c(other);
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ca, cb) = (&self.chunks[i], &other.chunks[j]);
            match ca.key.cmp(&cb.key) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += match (&ca.data, &cb.data) {
                        (Container::Array(a), Container::Array(b)) => array_merge_count(a, b),
                        (Container::Array(a), Container::Bitmap(bm))
                        | (Container::Bitmap(bm), Container::Array(a)) => {
                            a.iter().filter(|&&v| bitmap_contains(bm, v)).count()
                        }
                        (Container::Bitmap(a), Container::Bitmap(b)) => kernels::and_count(a, b),
                    };
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// `|self ∩ dense|`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersection_count_dense(&self, dense: &Bitset) -> usize {
        self.check_same_len_d(dense);
        let blocks = dense.blocks();
        let mut count = 0usize;
        for c in &self.chunks {
            let start = c.key as usize * CHUNK_WORDS;
            let end = (start + CHUNK_WORDS).min(blocks.len());
            let slice = &blocks[start..end];
            count += match &c.data {
                Container::Array(a) => a.iter().filter(|&&v| bitmap_contains(slice, v)).count(),
                Container::Bitmap(bm) => kernels::and_count(&bm[..slice.len()], slice),
            };
        }
        count
    }

    /// `self ∩ other` as a new compressed bitmap (containers re-normalised:
    /// a bitmap∩bitmap result at or below [`ARRAY_MAX`] becomes an array).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and(&self, other: &CompressedBitmap) -> CompressedBitmap {
        self.check_same_len_c(other);
        let mut chunks = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ca, cb) = (&self.chunks[i], &other.chunks[j]);
            match ca.key.cmp(&cb.key) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    match (&ca.data, &cb.data) {
                        (Container::Array(a), Container::Array(b)) => {
                            if let Some(mut c) = normalize(array_merge(a, b)) {
                                c.key = ca.key;
                                chunks.push(c);
                            }
                        }
                        (Container::Array(a), Container::Bitmap(bm))
                        | (Container::Bitmap(bm), Container::Array(a)) => {
                            let vals: Vec<u16> = a
                                .iter()
                                .copied()
                                .filter(|&v| bitmap_contains(bm, v))
                                .collect();
                            if let Some(mut c) = normalize(vals) {
                                c.key = ca.key;
                                chunks.push(c);
                            }
                        }
                        (Container::Bitmap(a), Container::Bitmap(b)) => {
                            let mut bm = a.clone();
                            let card = kernels::and_in_place_count(&mut bm, b);
                            if card > ARRAY_MAX {
                                chunks.push(Chunk {
                                    key: ca.key,
                                    card: card as u32,
                                    data: Container::Bitmap(bm),
                                });
                            } else if card > 0 {
                                chunks.push(Chunk {
                                    key: ca.key,
                                    card: card as u32,
                                    data: Container::Array(bitmap_to_array(&bm, card)),
                                });
                            }
                        }
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        CompressedBitmap {
            len: self.len,
            chunks,
        }
    }

    /// `self ∩ dense` as a new compressed bitmap.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and_dense(&self, dense: &Bitset) -> CompressedBitmap {
        self.check_same_len_d(dense);
        let blocks = dense.blocks();
        let mut chunks = Vec::new();
        for c in &self.chunks {
            let start = c.key as usize * CHUNK_WORDS;
            let end = (start + CHUNK_WORDS).min(blocks.len());
            let slice = &blocks[start..end];
            match &c.data {
                Container::Array(a) => {
                    let vals: Vec<u16> = a
                        .iter()
                        .copied()
                        .filter(|&v| bitmap_contains(slice, v))
                        .collect();
                    if let Some(mut ch) = normalize(vals) {
                        ch.key = c.key;
                        chunks.push(ch);
                    }
                }
                Container::Bitmap(bm) => {
                    let mut out = vec![0u64; CHUNK_WORDS].into_boxed_slice();
                    out[..slice.len()].copy_from_slice(&bm[..slice.len()]);
                    let card = kernels::and_in_place_count(&mut out[..slice.len()], slice);
                    if card > ARRAY_MAX {
                        chunks.push(Chunk {
                            key: c.key,
                            card: card as u32,
                            data: Container::Bitmap(out),
                        });
                    } else if card > 0 {
                        chunks.push(Chunk {
                            key: c.key,
                            card: card as u32,
                            data: Container::Array(bitmap_to_array(&out, card)),
                        });
                    }
                }
            }
        }
        CompressedBitmap {
            len: self.len,
            chunks,
        }
    }

    /// In-place `dense &= self`, returning the resulting popcount. Words in
    /// chunks absent from `self` are zeroed wholesale; array containers are
    /// expanded into an 8 KiB stack scratch mask per chunk.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and_into_dense(&self, dense: &mut Bitset) -> usize {
        self.check_same_len_d(dense);
        let blocks = dense.blocks_mut();
        let mut count = 0usize;
        let mut next = 0usize; // word cursor
        for c in &self.chunks {
            let start = c.key as usize * CHUNK_WORDS;
            let end = (start + CHUNK_WORDS).min(blocks.len());
            blocks[next..start].fill(0);
            match &c.data {
                Container::Array(a) => {
                    let mut mask = [0u64; CHUNK_WORDS];
                    for &v in a.iter() {
                        mask[(v >> 6) as usize] |= 1u64 << (v & 63);
                    }
                    count +=
                        kernels::and_in_place_count(&mut blocks[start..end], &mask[..end - start]);
                }
                Container::Bitmap(bm) => {
                    count +=
                        kernels::and_in_place_count(&mut blocks[start..end], &bm[..end - start]);
                }
            }
            next = end;
        }
        blocks[next..].fill(0);
        count
    }

    /// Iterates over set row indices in ascending order.
    pub fn iter_ones(&self) -> CompressedOnes<'_> {
        CompressedOnes {
            chunks: &self.chunks,
            ci: 0,
            pos: 0,
            word: 0,
            wi: 0,
        }
    }

    /// `(key, is_bitmap, cardinality)` per chunk — test-only introspection
    /// of the container-switch rule.
    #[doc(hidden)]
    pub fn container_summary(&self) -> Vec<(u32, bool, usize)> {
        self.chunks
            .iter()
            .map(|c| {
                (
                    c.key,
                    matches!(c.data, Container::Bitmap(_)),
                    c.card as usize,
                )
            })
            .collect()
    }

    fn check_same_len_c(&self, other: &CompressedBitmap) {
        assert_eq!(
            self.len, other.len,
            "bitset length mismatch: {} vs {}",
            self.len, other.len
        );
    }

    fn check_same_len_d(&self, other: &Bitset) {
        assert_eq!(
            self.len,
            other.len(),
            "bitset length mismatch: {} vs {}",
            self.len,
            other.len()
        );
    }
}

/// Ascending iterator over a [`CompressedBitmap`]'s set rows.
pub struct CompressedOnes<'a> {
    chunks: &'a [Chunk],
    ci: usize,
    /// Next index into an array container.
    pos: usize,
    /// Remaining bits of the current bitmap word.
    word: u64,
    /// Next word index into a bitmap container.
    wi: usize,
}

impl Iterator for CompressedOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            let chunk = self.chunks.get(self.ci)?;
            let base = chunk.key as usize * CHUNK_BITS;
            match &chunk.data {
                Container::Array(a) => {
                    if let Some(&v) = a.get(self.pos) {
                        self.pos += 1;
                        return Some(base + v as usize);
                    }
                }
                Container::Bitmap(bm) => {
                    if self.word != 0 {
                        let tz = self.word.trailing_zeros() as usize;
                        self.word &= self.word - 1;
                        return Some(base + (self.wi - 1) * 64 + tz);
                    }
                    if self.wi < bm.len() {
                        self.word = bm[self.wi];
                        self.wi += 1;
                        continue;
                    }
                }
            }
            self.ci += 1;
            self.pos = 0;
            self.word = 0;
            self.wi = 0;
        }
    }
}

/// A row mask in either representation, with one kernel set over all
/// representation pairings.
#[derive(Clone, PartialEq, Eq)]
pub enum RowSet {
    /// Flat `u64`-block bitset.
    Dense(Bitset),
    /// Roaring-style two-level bitmap.
    Compressed(CompressedBitmap),
}

impl std::fmt::Debug for RowSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RowSet::Dense(b) => write!(f, "Dense{b:?}"),
            RowSet::Compressed(c) => write!(f, "Compressed{c:?}"),
        }
    }
}

impl RowSet {
    /// Wraps a dense bitset in the representation chosen by the active
    /// [`mode`] (for `Auto`, by the [`auto_compress`] density rule).
    pub fn from_bitset(b: Bitset) -> RowSet {
        match mode() {
            BitsetMode::Dense => RowSet::Dense(b),
            BitsetMode::Compressed => RowSet::Compressed(CompressedBitmap::from_bitset(&b)),
            BitsetMode::Auto => {
                if auto_compress(b.len(), b.count_ones()) {
                    RowSet::Compressed(CompressedBitmap::from_bitset(&b))
                } else {
                    RowSet::Dense(b)
                }
            }
        }
    }

    /// Builds from ascending row indices under the active [`mode`].
    pub fn from_sorted_indices(len: usize, indices: &[usize]) -> RowSet {
        match mode() {
            BitsetMode::Dense => RowSet::Dense(Bitset::from_indices(len, indices.iter().copied())),
            BitsetMode::Compressed => RowSet::Compressed(CompressedBitmap::from_sorted_indices(
                len,
                indices.iter().copied(),
            )),
            BitsetMode::Auto => {
                if auto_compress(len, indices.len()) {
                    RowSet::Compressed(CompressedBitmap::from_sorted_indices(
                        len,
                        indices.iter().copied(),
                    ))
                } else {
                    RowSet::Dense(Bitset::from_indices(len, indices.iter().copied()))
                }
            }
        }
    }

    /// An all-clear dense scratch row set (the shape `intersect_into`
    /// recycles without allocating on the dense path).
    pub fn new_scratch(len: usize) -> RowSet {
        RowSet::Dense(Bitset::new(len))
    }

    /// Number of addressable rows.
    pub fn len(&self) -> usize {
        match self {
            RowSet::Dense(b) => b.len(),
            RowSet::Compressed(c) => c.len(),
        }
    }

    /// `true` if no row is set.
    pub fn is_empty(&self) -> bool {
        match self {
            RowSet::Dense(b) => b.is_empty(),
            RowSet::Compressed(c) => c.is_empty(),
        }
    }

    /// Number of set rows.
    pub fn count_ones(&self) -> usize {
        match self {
            RowSet::Dense(b) => b.count_ones(),
            RowSet::Compressed(c) => c.count_ones(),
        }
    }

    /// Membership test.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn contains(&self, i: usize) -> bool {
        match self {
            RowSet::Dense(b) => b.get(i),
            RowSet::Compressed(c) => c.contains(i),
        }
    }

    /// Expands into a dense bitset (cloning when already dense).
    pub fn to_bitset(&self) -> Bitset {
        match self {
            RowSet::Dense(b) => b.clone(),
            RowSet::Compressed(c) => c.to_bitset(),
        }
    }

    /// `|self ∩ other|` across any representation pairing.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersection_count(&self, other: &RowSet) -> usize {
        match (self, other) {
            (RowSet::Dense(a), RowSet::Dense(b)) => a.intersection_count(b),
            (RowSet::Dense(d), RowSet::Compressed(c))
            | (RowSet::Compressed(c), RowSet::Dense(d)) => c.intersection_count_dense(d),
            (RowSet::Compressed(a), RowSet::Compressed(b)) => a.intersection_count(b),
        }
    }

    /// `(|self ∩ other|, |self ∪ other|)`. Dense×dense uses the fused
    /// kernel; mixed/compressed pairings derive the union from
    /// `|A| + |B| − |A∩B|` (cardinalities are cached on compressed sets).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersection_union_count(&self, other: &RowSet) -> (usize, usize) {
        match (self, other) {
            (RowSet::Dense(a), RowSet::Dense(b)) => a.intersection_union_count(b),
            _ => {
                let inter = self.intersection_count(other);
                (inter, self.count_ones() + other.count_ones() - inter)
            }
        }
    }

    /// `|self ∪ other|`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn union_count(&self, other: &RowSet) -> usize {
        self.intersection_union_count(other).1
    }

    /// `|self \ other|`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn difference_count(&self, other: &RowSet) -> usize {
        match (self, other) {
            (RowSet::Dense(a), RowSet::Dense(b)) => a.difference_count(b),
            _ => self.count_ones() - self.intersection_count(other),
        }
    }

    /// `true` iff every set row of `self` is also set in `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn is_subset_of(&self, other: &RowSet) -> bool {
        match (self, other) {
            (RowSet::Dense(a), RowSet::Dense(b)) => a.is_subset_of(b),
            _ => self.intersection_count(other) == self.count_ones(),
        }
    }

    /// Jaccard similarity `|A∩B| / |A∪B|`, `0.0` when both are empty —
    /// Eq. 9's set-overlap factor over either representation.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn jaccard(&self, other: &RowSet) -> f64 {
        let (inter, union) = self.intersection_union_count(other);
        if union == 0 {
            return 0.0;
        }
        inter as f64 / union as f64
    }

    /// Writes `self ∩ other` into `out`, returning the resulting
    /// cardinality. On the dense×dense path with a dense `out` of the same
    /// length this is strictly allocation-free (copy + fused in-place
    /// intersection); other pairings rebuild `out`'s containers, whose size
    /// is bounded by the (small) result cardinality.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_into(&self, other: &RowSet, out: &mut RowSet) -> usize {
        match (self, other) {
            (RowSet::Dense(a), RowSet::Dense(b)) => match out {
                RowSet::Dense(o) if o.len() == a.len() => {
                    o.copy_from(a);
                    o.intersect_with_count(b)
                }
                _ => {
                    let mut o = a.clone();
                    let n = o.intersect_with_count(b);
                    *out = RowSet::Dense(o);
                    n
                }
            },
            (RowSet::Compressed(c), RowSet::Dense(d))
            | (RowSet::Dense(d), RowSet::Compressed(c)) => {
                let r = c.and_dense(d);
                let n = r.count_ones();
                *out = RowSet::Compressed(r);
                n
            }
            (RowSet::Compressed(a), RowSet::Compressed(b)) => {
                let r = a.and(b);
                let n = r.count_ones();
                *out = RowSet::Compressed(r);
                n
            }
        }
    }

    /// `self ∩ other` as a new row set.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and(&self, other: &RowSet) -> RowSet {
        match (self, other) {
            (RowSet::Dense(a), RowSet::Dense(b)) => {
                let mut o = a.clone();
                o.intersect_with(b);
                RowSet::Dense(o)
            }
            (RowSet::Compressed(c), RowSet::Dense(d))
            | (RowSet::Dense(d), RowSet::Compressed(c)) => RowSet::Compressed(c.and_dense(d)),
            (RowSet::Compressed(a), RowSet::Compressed(b)) => RowSet::Compressed(a.and(b)),
        }
    }

    /// `|self ∩ masks[j]|` for every mask. When everything is dense this is
    /// the cache-blocked [`Bitset::batch_intersection_counts`] sweep; any
    /// compressed operand falls back to per-pair counting (compressed
    /// intersections only touch non-empty chunks, so they are already
    /// bandwidth-proportional to the data that exists).
    ///
    /// # Panics
    /// Panics if any mask length differs.
    pub fn batch_intersection_counts(&self, masks: &[RowSet]) -> Vec<usize> {
        if let RowSet::Dense(probe) = self {
            if masks.iter().all(|m| matches!(m, RowSet::Dense(_))) {
                let dense: Vec<&Bitset> = masks
                    .iter()
                    .map(|m| match m {
                        RowSet::Dense(b) => b,
                        RowSet::Compressed(_) => unreachable!(),
                    })
                    .collect();
                // Mirror the Bitset tile sweep over borrowed masks.
                return batch_dense(probe, &dense);
            }
        }
        masks.iter().map(|m| self.intersection_count(m)).collect()
    }

    /// Iterates over set row indices in ascending order.
    pub fn iter_ones(&self) -> RowSetOnes<'_> {
        match self {
            RowSet::Dense(b) => RowSetOnes::Dense(b.iter_ones()),
            RowSet::Compressed(c) => RowSetOnes::Compressed(c.iter_ones()),
        }
    }

    /// `true` when this row set uses the compressed representation.
    pub fn is_compressed(&self) -> bool {
        matches!(self, RowSet::Compressed(_))
    }
}

/// Cache-blocked one-vs-many sweep over borrowed dense masks (see
/// [`Bitset::batch_intersection_counts`]).
fn batch_dense(probe: &Bitset, masks: &[&Bitset]) -> Vec<usize> {
    let pb = probe.blocks();
    let mut counts = vec![0usize; masks.len()];
    let mut start = 0usize;
    while start < pb.len() {
        let end = (start + crate::bitset::TILE_WORDS).min(pb.len());
        let tile = &pb[start..end];
        for (j, m) in masks.iter().enumerate() {
            assert_eq!(
                probe.len(),
                m.len(),
                "bitset length mismatch: {} vs {}",
                probe.len(),
                m.len()
            );
            counts[j] += kernels::and_count(tile, &m.blocks()[start..end]);
        }
        start = end;
    }
    counts
}

/// Ascending set-row iterator over either [`RowSet`] representation.
pub enum RowSetOnes<'a> {
    /// Dense block iterator.
    Dense(crate::bitset::Ones<'a>),
    /// Compressed chunk iterator.
    Compressed(CompressedOnes<'a>),
}

impl Iterator for RowSetOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            RowSetOnes::Dense(it) => it.next(),
            RowSetOnes::Compressed(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(len: usize, step: usize) -> Vec<usize> {
        (0..len).step_by(step).collect()
    }

    fn cb(len: usize, idx: &[usize]) -> CompressedBitmap {
        CompressedBitmap::from_sorted_indices(len, idx.iter().copied())
    }

    #[test]
    fn roundtrip_via_bitset() {
        let len = 3 * CHUNK_BITS + 1234;
        let idx = sparse(len, 97);
        let dense = Bitset::from_indices(len, idx.iter().copied());
        let c = CompressedBitmap::from_bitset(&dense);
        assert_eq!(c.count_ones(), idx.len());
        assert_eq!(c.to_bitset(), dense);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), idx);
        let c2 = cb(len, &idx);
        assert_eq!(c, c2);
    }

    #[test]
    fn container_boundary_at_array_max() {
        // Exactly ARRAY_MAX bits in one chunk → array; one more → bitmap.
        let at: Vec<usize> = (0..ARRAY_MAX).collect();
        let c = cb(CHUNK_BITS, &at);
        assert_eq!(c.container_summary(), vec![(0, false, ARRAY_MAX)]);
        let over: Vec<usize> = (0..ARRAY_MAX + 1).collect();
        let c = cb(CHUNK_BITS, &over);
        assert_eq!(c.container_summary(), vec![(0, true, ARRAY_MAX + 1)]);
        // from_bitset agrees with from_sorted_indices on the boundary
        let d = Bitset::from_indices(CHUNK_BITS, over.iter().copied());
        assert_eq!(
            CompressedBitmap::from_bitset(&d).container_summary(),
            vec![(0, true, ARRAY_MAX + 1)]
        );
    }

    #[test]
    fn and_renormalises_bitmap_results() {
        // Two bitmap containers whose intersection is small → array result.
        let a: Vec<usize> = (0..2 * ARRAY_MAX).collect();
        let b: Vec<usize> = (2 * ARRAY_MAX - 10..3 * ARRAY_MAX).collect();
        let (ca, cbm) = (cb(CHUNK_BITS, &a), cb(CHUNK_BITS, &b));
        assert!(ca.container_summary()[0].1 && cbm.container_summary()[0].1);
        let inter = ca.and(&cbm);
        assert_eq!(inter.count_ones(), 10);
        assert_eq!(inter.container_summary(), vec![(0, false, 10)]);
        assert_eq!(ca.intersection_count(&cbm), 10);
    }

    #[test]
    fn cross_representation_counts_agree() {
        let len = 2 * CHUNK_BITS + 555;
        let ia = sparse(len, 3);
        let ib: Vec<usize> = (0..len).filter(|i| i % 5 == 0 || i % 7 == 2).collect();
        let (da, db) = (
            Bitset::from_indices(len, ia.iter().copied()),
            Bitset::from_indices(len, ib.iter().copied()),
        );
        let (ca, cbm) = (cb(len, &ia), cb(len, &ib));
        let expect = da.intersection_count(&db);
        assert_eq!(ca.intersection_count(&cbm), expect);
        assert_eq!(ca.intersection_count_dense(&db), expect);
        assert_eq!(cbm.intersection_count_dense(&da), expect);
        assert_eq!(ca.and(&cbm).count_ones(), expect);
        assert_eq!(ca.and_dense(&db).count_ones(), expect);
        let mut d = da.clone();
        assert_eq!(cbm.and_into_dense(&mut d), expect);
        assert_eq!(d.count_ones(), expect);
        assert_eq!(d, ca.and(&cbm).to_bitset());
    }

    #[test]
    fn rowset_kernels_cover_all_pairings() {
        let len = CHUNK_BITS + 321;
        let ia = sparse(len, 11);
        let ib = sparse(len, 4);
        let variants = |idx: &[usize]| {
            vec![
                RowSet::Dense(Bitset::from_indices(len, idx.iter().copied())),
                RowSet::Compressed(cb(len, idx)),
            ]
        };
        let da = Bitset::from_indices(len, ia.iter().copied());
        let db = Bitset::from_indices(len, ib.iter().copied());
        let (ei, eu) = da.intersection_union_count(&db);
        for a in variants(&ia) {
            for b in variants(&ib) {
                assert_eq!(a.intersection_count(&b), ei);
                assert_eq!(a.intersection_union_count(&b), (ei, eu));
                assert_eq!(a.union_count(&b), eu);
                assert_eq!(a.difference_count(&b), da.difference_count(&db));
                assert_eq!(a.jaccard(&b), da.jaccard(&db));
                assert!(!a.is_subset_of(&b));
                assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), {
                    let mut x = da.clone();
                    x.intersect_with(&db);
                    x.iter_ones().collect::<Vec<_>>()
                });
                let mut out = RowSet::new_scratch(len);
                assert_eq!(a.intersect_into(&b, &mut out), ei);
                assert_eq!(out.count_ones(), ei);
                assert_eq!(
                    a.batch_intersection_counts(std::slice::from_ref(&b)),
                    vec![ei]
                );
            }
        }
    }

    #[test]
    fn mode_override_and_auto_rule() {
        set_mode_override(Some(BitsetMode::Dense));
        assert!(!RowSet::from_sorted_indices(100_000, &[5]).is_compressed());
        set_mode_override(Some(BitsetMode::Compressed));
        assert!(RowSet::from_sorted_indices(10, &[5]).is_compressed());
        set_mode_override(Some(BitsetMode::Auto));
        // small universe → dense regardless of density
        assert!(!RowSet::from_sorted_indices(100, &[5]).is_compressed());
        // big sparse → compressed; big dense → dense
        let sparse_idx: Vec<usize> = (0..100_000).step_by(1000).collect();
        assert!(RowSet::from_sorted_indices(100_000, &sparse_idx).is_compressed());
        let dense_idx: Vec<usize> = (0..100_000).step_by(2).collect();
        assert!(!RowSet::from_sorted_indices(100_000, &dense_idx).is_compressed());
        set_mode_override(None);
    }

    #[test]
    fn contains_and_empty() {
        let c = cb(CHUNK_BITS * 2, &[3, CHUNK_BITS + 7]);
        assert!(c.contains(3) && c.contains(CHUNK_BITS + 7));
        assert!(!c.contains(4) && !c.contains(CHUNK_BITS));
        assert!(!c.is_empty());
        assert!(cb(50, &[]).is_empty());
        assert_eq!(cb(50, &[]).count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        cb(10, &[1]).intersection_count(&cb(11, &[1]));
    }
}
