//! Train/test splitting: stratified k-fold cross validation (the paper's
//! evaluation protocol — "Each dataset is partitioned into ten parts evenly.
//! Each time, one part is used for test and the other nine for training")
//! and stratified holdout splits.

use crate::schema::ClassId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One cross-validation fold: disjoint train/test row indices.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Test row indices.
    pub test: Vec<usize>,
}

/// Stratified k-fold split: each class's rows are shuffled (seeded) and dealt
/// round-robin across folds, so every fold preserves the class distribution
/// as closely as integer counts allow.
///
/// # Panics
/// Panics if `k < 2` or `k > labels.len()`.
pub fn stratified_k_fold(labels: &[ClassId], k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= labels.len(), "more folds than instances");
    let mut rng = StdRng::seed_from_u64(seed);

    let n_classes = labels.iter().map(|l| l.index() + 1).max().unwrap_or(0);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, l) in labels.iter().enumerate() {
        per_class[l.index()].push(i);
    }

    let mut fold_test: Vec<Vec<usize>> = vec![Vec::new(); k];
    for rows in &mut per_class {
        rows.shuffle(&mut rng);
        for (j, &row) in rows.iter().enumerate() {
            fold_test[j % k].push(row);
        }
    }

    (0..k)
        .map(|f| {
            let mut test = fold_test[f].clone();
            test.sort_unstable();
            let mut train: Vec<usize> = (0..k)
                .filter(|&g| g != f)
                .flat_map(|g| fold_test[g].iter().copied())
                .collect();
            train.sort_unstable();
            Fold { train, test }
        })
        .collect()
}

/// Stratified holdout split; `test_fraction` of each class goes to the test
/// set (rounded down, at least one instance stays in train per class when a
/// class has more than one instance).
///
/// # Panics
/// Panics unless `0.0 < test_fraction < 1.0`.
pub fn stratified_holdout(labels: &[ClassId], test_fraction: f64, seed: u64) -> Fold {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0,1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = labels.iter().map(|l| l.index() + 1).max().unwrap_or(0);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, l) in labels.iter().enumerate() {
        per_class[l.index()].push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for rows in &mut per_class {
        rows.shuffle(&mut rng);
        let mut n_test = (rows.len() as f64 * test_fraction).floor() as usize;
        if n_test == rows.len() && n_test > 0 {
            n_test -= 1;
        }
        test.extend_from_slice(&rows[..n_test]);
        train.extend_from_slice(&rows[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    Fold { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(spec: &[(u32, usize)]) -> Vec<ClassId> {
        spec.iter()
            .flat_map(|&(c, n)| std::iter::repeat_n(ClassId(c), n))
            .collect()
    }

    #[test]
    fn folds_partition_everything() {
        let l = labels(&[(0, 37), (1, 23)]);
        let folds = stratified_k_fold(&l, 10, 7);
        assert_eq!(folds.len(), 10);
        let mut seen = vec![0usize; l.len()];
        for f in &folds {
            for &t in &f.test {
                seen[t] += 1;
            }
            // train ∪ test covers all rows, disjointly
            assert_eq!(f.train.len() + f.test.len(), l.len());
            let mut all: Vec<usize> = f.train.iter().chain(&f.test).copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), l.len());
        }
        // every row is tested exactly once across folds
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn folds_are_stratified() {
        let l = labels(&[(0, 50), (1, 50)]);
        for f in stratified_k_fold(&l, 10, 1) {
            let c0 = f.test.iter().filter(|&&i| l[i] == ClassId(0)).count();
            assert_eq!(c0, 5);
            assert_eq!(f.test.len(), 10);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let l = labels(&[(0, 30), (1, 20)]);
        let a = stratified_k_fold(&l, 5, 42);
        let b = stratified_k_fold(&l, 5, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.test, y.test);
        }
        let c = stratified_k_fold(&l, 5, 43);
        assert!(a.iter().zip(&c).any(|(x, y)| x.test != y.test));
    }

    #[test]
    fn holdout_fractions() {
        let l = labels(&[(0, 40), (1, 10)]);
        let f = stratified_holdout(&l, 0.2, 3);
        assert_eq!(f.test.len(), 8 + 2);
        assert_eq!(f.train.len(), 40);
        let c1 = f.test.iter().filter(|&&i| l[i] == ClassId(1)).count();
        assert_eq!(c1, 2);
    }

    #[test]
    fn holdout_keeps_singletons_in_train() {
        let l = labels(&[(0, 1), (1, 9)]);
        let f = stratified_holdout(&l, 0.9, 3);
        assert!(f.train.iter().any(|&i| l[i] == ClassId(0)));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn k1_panics() {
        stratified_k_fold(&labels(&[(0, 5)]), 1, 0);
    }
}
