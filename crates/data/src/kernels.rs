//! Chunked `u64`-word kernels shared by the dense [`crate::bitset::Bitset`]
//! and the bitmap containers of [`crate::rowset::CompressedBitmap`].
//!
//! Every loop is written as an explicit 4-word block (`u64x4`-style) with
//! independent accumulators, the shape LLVM autovectorizes on stable Rust
//! without `std::simd`: four independent popcount chains per iteration keep
//! the ALU ports busy, and the bounds-check-free `chunks_exact` bodies leave
//! the optimizer a straight-line vectorizable kernel. The scalar
//! one-word-at-a-time baselines these replaced live on in
//! [`crate::bitset::scalar`] for benchmarking and equivalence testing.

/// `Σ popcount(a & b)` over two equal-length word slices.
#[inline]
pub(crate) fn and_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut c0 = 0u64;
    let mut c1 = 0u64;
    let mut c2 = 0u64;
    let mut c3 = 0u64;
    let mut ita = a.chunks_exact(4);
    let mut itb = b.chunks_exact(4);
    for (wa, wb) in (&mut ita).zip(&mut itb) {
        c0 += (wa[0] & wb[0]).count_ones() as u64;
        c1 += (wa[1] & wb[1]).count_ones() as u64;
        c2 += (wa[2] & wb[2]).count_ones() as u64;
        c3 += (wa[3] & wb[3]).count_ones() as u64;
    }
    let mut rest = 0u64;
    for (wa, wb) in ita.remainder().iter().zip(itb.remainder()) {
        rest += (wa & wb).count_ones() as u64;
    }
    (c0 + c1 + c2 + c3 + rest) as usize
}

/// `Σ popcount(a | b)` over two equal-length word slices.
#[inline]
pub(crate) fn or_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut c0 = 0u64;
    let mut c1 = 0u64;
    let mut c2 = 0u64;
    let mut c3 = 0u64;
    let mut ita = a.chunks_exact(4);
    let mut itb = b.chunks_exact(4);
    for (wa, wb) in (&mut ita).zip(&mut itb) {
        c0 += (wa[0] | wb[0]).count_ones() as u64;
        c1 += (wa[1] | wb[1]).count_ones() as u64;
        c2 += (wa[2] | wb[2]).count_ones() as u64;
        c3 += (wa[3] | wb[3]).count_ones() as u64;
    }
    let mut rest = 0u64;
    for (wa, wb) in ita.remainder().iter().zip(itb.remainder()) {
        rest += (wa | wb).count_ones() as u64;
    }
    (c0 + c1 + c2 + c3 + rest) as usize
}

/// `Σ popcount(a & !b)` over two equal-length word slices.
#[inline]
pub(crate) fn andnot_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut c0 = 0u64;
    let mut c1 = 0u64;
    let mut c2 = 0u64;
    let mut c3 = 0u64;
    let mut ita = a.chunks_exact(4);
    let mut itb = b.chunks_exact(4);
    for (wa, wb) in (&mut ita).zip(&mut itb) {
        c0 += (wa[0] & !wb[0]).count_ones() as u64;
        c1 += (wa[1] & !wb[1]).count_ones() as u64;
        c2 += (wa[2] & !wb[2]).count_ones() as u64;
        c3 += (wa[3] & !wb[3]).count_ones() as u64;
    }
    let mut rest = 0u64;
    for (wa, wb) in ita.remainder().iter().zip(itb.remainder()) {
        rest += (wa & !wb).count_ones() as u64;
    }
    (c0 + c1 + c2 + c3 + rest) as usize
}

/// `(Σ popcount(a & b), Σ popcount(a | b))` fused in one pass — the Jaccard
/// (Eq. 9) kernel.
#[inline]
pub(crate) fn and_or_count(a: &[u64], b: &[u64]) -> (usize, usize) {
    debug_assert_eq!(a.len(), b.len());
    let mut i0 = 0u64;
    let mut i1 = 0u64;
    let mut u0 = 0u64;
    let mut u1 = 0u64;
    let mut ita = a.chunks_exact(4);
    let mut itb = b.chunks_exact(4);
    for (wa, wb) in (&mut ita).zip(&mut itb) {
        i0 += (wa[0] & wb[0]).count_ones() as u64 + (wa[1] & wb[1]).count_ones() as u64;
        i1 += (wa[2] & wb[2]).count_ones() as u64 + (wa[3] & wb[3]).count_ones() as u64;
        u0 += (wa[0] | wb[0]).count_ones() as u64 + (wa[1] | wb[1]).count_ones() as u64;
        u1 += (wa[2] | wb[2]).count_ones() as u64 + (wa[3] | wb[3]).count_ones() as u64;
    }
    let mut ir = 0u64;
    let mut ur = 0u64;
    for (wa, wb) in ita.remainder().iter().zip(itb.remainder()) {
        ir += (wa & wb).count_ones() as u64;
        ur += (wa | wb).count_ones() as u64;
    }
    ((i0 + i1 + ir) as usize, (u0 + u1 + ur) as usize)
}

/// Σ popcount over one word slice.
#[inline]
pub(crate) fn count(a: &[u64]) -> usize {
    let mut c0 = 0u64;
    let mut c1 = 0u64;
    let mut c2 = 0u64;
    let mut c3 = 0u64;
    let mut it = a.chunks_exact(4);
    for w in &mut it {
        c0 += w[0].count_ones() as u64;
        c1 += w[1].count_ones() as u64;
        c2 += w[2].count_ones() as u64;
        c3 += w[3].count_ones() as u64;
    }
    let mut rest = 0u64;
    for w in it.remainder() {
        rest += w.count_ones() as u64;
    }
    (c0 + c1 + c2 + c3 + rest) as usize
}

/// In-place `a &= b`.
#[inline]
pub(crate) fn and_in_place(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let mut ita = a.chunks_exact_mut(4);
    let mut itb = b.chunks_exact(4);
    for (wa, wb) in (&mut ita).zip(&mut itb) {
        wa[0] &= wb[0];
        wa[1] &= wb[1];
        wa[2] &= wb[2];
        wa[3] &= wb[3];
    }
    for (wa, wb) in ita.into_remainder().iter_mut().zip(itb.remainder()) {
        *wa &= wb;
    }
}

/// In-place `a &= b`, returning the resulting popcount from the same pass.
#[inline]
pub(crate) fn and_in_place_count(a: &mut [u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut c0 = 0u64;
    let mut c1 = 0u64;
    let mut c2 = 0u64;
    let mut c3 = 0u64;
    let mut ita = a.chunks_exact_mut(4);
    let mut itb = b.chunks_exact(4);
    for (wa, wb) in (&mut ita).zip(&mut itb) {
        wa[0] &= wb[0];
        wa[1] &= wb[1];
        wa[2] &= wb[2];
        wa[3] &= wb[3];
        c0 += wa[0].count_ones() as u64;
        c1 += wa[1].count_ones() as u64;
        c2 += wa[2].count_ones() as u64;
        c3 += wa[3].count_ones() as u64;
    }
    let mut rest = 0u64;
    for (wa, wb) in ita.into_remainder().iter_mut().zip(itb.remainder()) {
        *wa &= wb;
        rest += wa.count_ones() as u64;
    }
    (c0 + c1 + c2 + c3 + rest) as usize
}

/// In-place `a |= b`.
#[inline]
pub(crate) fn or_in_place(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let mut ita = a.chunks_exact_mut(4);
    let mut itb = b.chunks_exact(4);
    for (wa, wb) in (&mut ita).zip(&mut itb) {
        wa[0] |= wb[0];
        wa[1] |= wb[1];
        wa[2] |= wb[2];
        wa[3] |= wb[3];
    }
    for (wa, wb) in ita.into_remainder().iter_mut().zip(itb.remainder()) {
        *wa |= wb;
    }
}

/// In-place `a &= !b`.
#[inline]
pub(crate) fn andnot_in_place(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let mut ita = a.chunks_exact_mut(4);
    let mut itb = b.chunks_exact(4);
    for (wa, wb) in (&mut ita).zip(&mut itb) {
        wa[0] &= !wb[0];
        wa[1] &= !wb[1];
        wa[2] &= !wb[2];
        wa[3] &= !wb[3];
    }
    for (wa, wb) in ita.into_remainder().iter_mut().zip(itb.remainder()) {
        *wa &= !wb;
    }
}

/// `true` iff `a & !b == 0` everywhere (subset test), with per-block early
/// exit.
#[inline]
pub(crate) fn is_subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ita = a.chunks_exact(4);
    let mut itb = b.chunks_exact(4);
    for (wa, wb) in (&mut ita).zip(&mut itb) {
        let stray = (wa[0] & !wb[0]) | (wa[1] & !wb[1]) | (wa[2] & !wb[2]) | (wa[3] & !wb[3]);
        if stray != 0 {
            return false;
        }
    }
    ita.remainder()
        .iter()
        .zip(itb.remainder())
        .all(|(wa, wb)| wa & !wb == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        // xorshift-ish deterministic filler
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            })
            .collect()
    }

    #[test]
    fn kernels_match_naive_at_all_tail_lengths() {
        for n in 0..19usize {
            let a = words(3, n);
            let b = words(5, n);
            let naive_and: usize = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum();
            let naive_or: usize = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x | y).count_ones() as usize)
                .sum();
            let naive_diff: usize = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x & !y).count_ones() as usize)
                .sum();
            assert_eq!(and_count(&a, &b), naive_and, "n={n}");
            assert_eq!(or_count(&a, &b), naive_or, "n={n}");
            assert_eq!(andnot_count(&a, &b), naive_diff, "n={n}");
            assert_eq!(and_or_count(&a, &b), (naive_and, naive_or), "n={n}");
            assert_eq!(
                count(&a),
                a.iter().map(|x| x.count_ones() as usize).sum::<usize>()
            );

            let mut c = a.clone();
            and_in_place(&mut c, &b);
            assert_eq!(count(&c), naive_and);
            let mut c = a.clone();
            assert_eq!(and_in_place_count(&mut c, &b), naive_and);
            let mut c = a.clone();
            or_in_place(&mut c, &b);
            assert_eq!(count(&c), naive_or);
            let mut c = a.clone();
            andnot_in_place(&mut c, &b);
            assert_eq!(count(&c), naive_diff);
            assert_eq!(is_subset(&c, &a), true);
            if naive_diff > 0 {
                assert_eq!(is_subset(&a, &b), false);
            }
        }
    }
}
