//! Minimal, dependency-free CSV reader/writer for labelled datasets.
//!
//! Format: first line is a header; the **last column is the class label**.
//! A column is inferred numeric iff every non-missing cell parses as `f64`;
//! otherwise categorical (values collected in first-appearance order).
//! `?` and empty cells are missing values. No quoting/escaping is supported —
//! this is a drop-in loader for UCI-style comma-separated files, not a
//! general CSV engine.

use crate::dataset::{Dataset, Value};
use crate::schema::{Attribute, AttributeKind, ClassId, Schema};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors produced by the CSV loader.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Malformed(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Malformed(m) => write!(f, "malformed csv: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads a labelled dataset from CSV (header row; last column = class).
pub fn read_dataset<R: Read>(reader: R) -> Result<Dataset, CsvError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Malformed("empty file".into()))??;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if names.len() < 2 {
        return Err(CsvError::Malformed(
            "need at least one attribute column and a class column".into(),
        ));
    }
    let n_attrs = names.len() - 1;

    let mut raw: Vec<Vec<String>> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<String> = line.split(',').map(|s| s.trim().to_string()).collect();
        if cells.len() != names.len() {
            return Err(CsvError::Malformed(format!(
                "line {}: expected {} cells, got {}",
                lineno + 2,
                names.len(),
                cells.len()
            )));
        }
        raw.push(cells);
    }

    let is_missing = |s: &str| s.is_empty() || s == "?";

    // Infer column kinds.
    let mut numeric = vec![true; n_attrs];
    for row in &raw {
        for (a, cell) in row[..n_attrs].iter().enumerate() {
            if !is_missing(cell) && cell.parse::<f64>().is_err() {
                numeric[a] = false;
            }
        }
    }

    // Collect categorical value dictionaries and class names.
    let mut value_dicts: Vec<Vec<String>> = vec![Vec::new(); n_attrs];
    let mut value_idx: Vec<HashMap<String, u32>> = vec![HashMap::new(); n_attrs];
    let mut class_names: Vec<String> = Vec::new();
    let mut class_idx: HashMap<String, u32> = HashMap::new();
    for row in &raw {
        for a in 0..n_attrs {
            let cell = &row[a];
            if !numeric[a] && !is_missing(cell) && !value_idx[a].contains_key(cell) {
                value_idx[a].insert(cell.clone(), value_dicts[a].len() as u32);
                value_dicts[a].push(cell.clone());
            }
        }
        let cls = &row[n_attrs];
        if !class_idx.contains_key(cls) {
            class_idx.insert(cls.clone(), class_names.len() as u32);
            class_names.push(cls.clone());
        }
    }

    let attributes: Vec<Attribute> = names[..n_attrs]
        .iter()
        .enumerate()
        .map(|(a, name)| {
            if numeric[a] {
                Attribute::numeric(name.clone())
            } else {
                Attribute::categorical(name.clone(), value_dicts[a].clone())
            }
        })
        .collect();
    let schema = Schema::new(attributes, class_names);

    let mut rows = Vec::with_capacity(raw.len());
    let mut labels = Vec::with_capacity(raw.len());
    for row in &raw {
        let mut cells = Vec::with_capacity(n_attrs);
        for a in 0..n_attrs {
            let cell = &row[a];
            if is_missing(cell) {
                cells.push(Value::Missing);
            } else if numeric[a] {
                cells.push(Value::Num(cell.parse::<f64>().map_err(|_| {
                    CsvError::Malformed(format!("bad numeric cell {cell:?}"))
                })?));
            } else {
                cells.push(Value::Cat(value_idx[a][cell]));
            }
        }
        rows.push(cells);
        labels.push(ClassId(class_idx[&row[n_attrs]]));
    }
    Ok(Dataset::new(schema, rows, labels))
}

/// Writes a dataset as CSV in the same format [`read_dataset`] accepts.
pub fn write_dataset<W: Write>(data: &Dataset, writer: &mut W) -> std::io::Result<()> {
    let header: Vec<&str> = data
        .schema
        .attributes
        .iter()
        .map(|a| a.name.as_str())
        .chain(std::iter::once("class"))
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for (row, label) in data.rows.iter().zip(&data.labels) {
        let mut cells: Vec<String> = Vec::with_capacity(row.len() + 1);
        for (a, cell) in row.iter().enumerate() {
            cells.push(match cell {
                Value::Missing => "?".to_string(),
                Value::Num(v) => format!("{v}"),
                Value::Cat(v) => match &data.schema.attributes[a].kind {
                    AttributeKind::Categorical { values } => values[*v as usize].clone(),
                    AttributeKind::Numeric => unreachable!("Cat value in numeric column"),
                },
            });
        }
        cells.push(data.schema.class_names[label.index()].clone());
        writeln!(writer, "{}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
color,size,weight,class
red,big,1.5,pos
blue,small,2.0,neg
red,?,,pos
";

    #[test]
    fn read_mixed_types() {
        let d = read_dataset(SAMPLE.as_bytes()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.schema.n_attributes(), 3);
        assert!(matches!(
            d.schema.attributes[0].kind,
            AttributeKind::Categorical { .. }
        ));
        assert!(d.schema.attributes[2].is_numeric());
        assert_eq!(d.schema.class_names, vec!["pos", "neg"]);
        assert_eq!(d.rows[2][1], Value::Missing);
        assert_eq!(d.rows[2][2], Value::Missing);
        assert_eq!(d.labels, vec![ClassId(0), ClassId(1), ClassId(0)]);
    }

    #[test]
    fn roundtrip() {
        let d = read_dataset(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let d2 = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(d2.len(), d.len());
        assert_eq!(d2.labels, d.labels);
        assert_eq!(d2.rows, d.rows);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = read_dataset("a,b,class\n1,2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Malformed(_)));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(read_dataset("".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let d = read_dataset("a,class\n1,x\n\n2,y\n".as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn all_numeric_column_with_missing_stays_numeric() {
        let d = read_dataset("a,class\n1,x\n?,y\n3.5,x\n".as_bytes()).unwrap();
        assert!(d.schema.attributes[0].is_numeric());
        assert_eq!(d.rows[1][0], Value::Missing);
    }
}
