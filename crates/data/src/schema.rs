//! Attribute schema for relational datasets (paper §2, "Problem Formulation").
//!
//! A dataset has `k` categorical attributes (numeric attributes are
//! discretized first) and `m` classes `C = {c_1, …, c_m}`. Each
//! `(attribute, value)` pair is later mapped to a distinct item — that
//! mapping lives in [`crate::transactions::ItemMap`].

/// Identifier of a class label, dense in `[0, n_classes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Class index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The kind of an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeKind {
    /// Categorical attribute with a fixed set of named values.
    Categorical {
        /// Value names; a cell stores an index into this vector.
        values: Vec<String>,
    },
    /// Numeric (continuous) attribute; must be discretized before mining.
    Numeric,
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name (unique within a schema by convention, not enforced).
    pub name: String,
    /// Categorical or numeric.
    pub kind: AttributeKind,
}

impl Attribute {
    /// A categorical attribute with the given value names.
    pub fn categorical(name: impl Into<String>, values: Vec<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Categorical { values },
        }
    }

    /// A categorical attribute with `n` anonymous values `v0..v{n-1}`.
    pub fn categorical_anon(name: impl Into<String>, n: usize) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Categorical {
                values: (0..n).map(|i| format!("v{i}")).collect(),
            },
        }
    }

    /// A numeric attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Numeric,
        }
    }

    /// Number of distinct values for categorical attributes, `None` for numeric.
    pub fn arity(&self) -> Option<usize> {
        match &self.kind {
            AttributeKind::Categorical { values } => Some(values.len()),
            AttributeKind::Numeric => None,
        }
    }

    /// `true` if the attribute is numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self.kind, AttributeKind::Numeric)
    }
}

/// Dataset schema: the attribute list and the class-name list.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Attributes, in column order.
    pub attributes: Vec<Attribute>,
    /// Class names; `ClassId(i)` refers to `class_names[i]`.
    pub class_names: Vec<String>,
}

impl Schema {
    /// Creates a schema.
    pub fn new(attributes: Vec<Attribute>, class_names: Vec<String>) -> Self {
        Schema {
            attributes,
            class_names,
        }
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of classes `m`.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// `true` if any attribute is numeric (i.e. discretization is required).
    pub fn has_numeric(&self) -> bool {
        self.attributes.iter().any(Attribute::is_numeric)
    }

    /// Total number of items `d = |I|` once every categorical value is mapped
    /// to an item. Returns `None` if any attribute is still numeric.
    pub fn n_items(&self) -> Option<usize> {
        self.attributes.iter().map(Attribute::arity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Attribute::categorical_anon("a", 3),
                Attribute::numeric("b"),
                Attribute::categorical("c", vec!["x".into(), "y".into()]),
            ],
            vec!["pos".into(), "neg".into()],
        )
    }

    #[test]
    fn arity_and_counts() {
        let s = schema();
        assert_eq!(s.n_attributes(), 3);
        assert_eq!(s.n_classes(), 2);
        assert!(s.has_numeric());
        assert_eq!(s.n_items(), None);
        assert_eq!(s.attributes[0].arity(), Some(3));
        assert_eq!(s.attributes[1].arity(), None);
    }

    #[test]
    fn all_categorical_item_count() {
        let s = Schema::new(
            vec![
                Attribute::categorical_anon("a", 3),
                Attribute::categorical_anon("b", 4),
            ],
            vec!["p".into(), "n".into()],
        );
        assert!(!s.has_numeric());
        assert_eq!(s.n_items(), Some(7));
    }

    #[test]
    fn class_id_display() {
        assert_eq!(ClassId(3).to_string(), "c3");
        assert_eq!(ClassId(3).index(), 3);
    }
}
