//! Out-of-core CSV → transaction ingestion with bounded resident memory.
//!
//! [`crate::csv::read_dataset`] materialises every raw cell as a `String`
//! before building anything — fine for UCI-sized files, hopeless for
//! million-row inputs where the intermediate `Vec<Vec<String>>` dwarfs the
//! columnar output. This module streams instead: the file is read in
//! fixed-size buffered **segments** (std-only `Read` calls — no mmap, no
//! libc) and scanned twice:
//!
//! 1. **Pass 1** infers each column's kind (numeric iff every non-missing
//!    cell parses as `f64`, same rule as the in-memory reader), collects
//!    categorical dictionaries (capped by
//!    [`IngestOptions::max_categories`]), numeric min/max, and the class
//!    dictionary;
//! 2. **Pass 2** re-reads the file and emits each row directly as a sorted
//!    item [`Transaction`] — numeric cells are equal-width binned into
//!    [`IngestOptions::numeric_bins`] bins from the pass-1 min/max, missing
//!    cells (`?` or empty) simply contribute no item.
//!
//! Peak resident memory is the segment buffer plus the columnar output
//! itself; the raw text is never held whole. The segment-refill boundary
//! carries the `data.ingest` failpoint: armed with `trunc` it surfaces a
//! typed [`IngestError::TruncatedSegment`] (never a panic), armed with
//! `err` it fails with [`IngestError::Injected`].

use crate::schema::{Attribute, ClassId, Schema};
use crate::transactions::{ItemMap, Transaction, TransactionSet};
use std::collections::HashMap;
use std::io::Read;
use std::path::Path;

/// Tuning knobs for streaming ingestion.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Bytes per buffered segment read (the resident-text bound).
    pub segment_bytes: usize,
    /// Equal-width bins for each numeric column.
    pub numeric_bins: usize,
    /// Maximum distinct values per categorical column; exceeding it is a
    /// typed error (a column with unbounded card would explode the item
    /// space, and out-of-core we cannot retroactively re-type it).
    pub max_categories: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            segment_bytes: 1 << 20,
            numeric_bins: 5,
            max_categories: 4096,
        }
    }
}

/// Errors produced by streaming ingestion.
#[derive(Debug)]
pub enum IngestError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem with the file contents (1-based line number).
    Malformed {
        /// 1-based line number of the offending row.
        line: u64,
        /// What went wrong.
        msg: String,
    },
    /// A segment read came back short (fault-injected via `data.ingest`).
    TruncatedSegment {
        /// Byte offset at which the stream was cut.
        offset: u64,
    },
    /// A categorical column exceeded [`IngestOptions::max_categories`].
    TooManyValues {
        /// Column name.
        column: String,
        /// The configured cap.
        limit: usize,
    },
    /// Fault-injected failure at the named site.
    Injected(&'static str),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "io error: {e}"),
            IngestError::Malformed { line, msg } => {
                write!(f, "malformed csv at line {line}: {msg}")
            }
            IngestError::TruncatedSegment { offset } => {
                write!(f, "truncated segment read at byte {offset}")
            }
            IngestError::TooManyValues { column, limit } => {
                write!(f, "column {column:?} exceeds {limit} distinct values")
            }
            IngestError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// The product of streaming ingestion: an all-categorical schema (numeric
/// columns arrive pre-binned), the item mapping, and the transactions.
#[derive(Debug)]
pub struct Ingested {
    /// All-categorical schema (numeric columns binned to `bin0..binN`).
    pub schema: Schema,
    /// The `(attribute, value) → item` mapping for `schema`.
    pub item_map: ItemMap,
    /// The labelled transaction set.
    pub transactions: TransactionSet,
}

/// Fixed-size buffered segment reader with line extraction. The only
/// allocation is the segment buffer; lines are assembled into a caller
/// scratch to survive segment boundaries.
struct SegmentReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    /// Bytes consumed before the current buffer (for error offsets).
    offset: u64,
    eof: bool,
}

impl<R: Read> SegmentReader<R> {
    fn new(inner: R, segment_bytes: usize) -> Self {
        SegmentReader {
            inner,
            buf: vec![0u8; segment_bytes.max(64)],
            pos: 0,
            len: 0,
            offset: 0,
            eof: false,
        }
    }

    /// Reads the next segment. The `data.ingest` failpoint fires here —
    /// the refill is the I/O boundary an operator would see fail.
    fn refill(&mut self) -> Result<(), IngestError> {
        match dfp_fault::evaluate("data.ingest") {
            Some(dfp_fault::Action::Err) => return Err(IngestError::Injected("data.ingest")),
            Some(dfp_fault::Action::Trunc) => {
                return Err(IngestError::TruncatedSegment {
                    offset: self.offset,
                })
            }
            _ => {}
        }
        self.offset += self.len as u64;
        self.pos = 0;
        self.len = self.inner.read(&mut self.buf)?;
        if self.len == 0 {
            self.eof = true;
        }
        Ok(())
    }

    /// Appends the next line (without terminator) into `line`. Returns
    /// `false` at end of input.
    fn next_line(&mut self, line: &mut Vec<u8>) -> Result<bool, IngestError> {
        line.clear();
        loop {
            if self.pos >= self.len {
                if self.eof {
                    return Ok(!line.is_empty());
                }
                self.refill()?;
                continue;
            }
            let chunk = &self.buf[self.pos..self.len];
            match chunk.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    line.extend_from_slice(&chunk[..nl]);
                    self.pos += nl + 1;
                    return Ok(true);
                }
                None => {
                    line.extend_from_slice(chunk);
                    self.pos = self.len;
                }
            }
        }
    }
}

fn is_missing(s: &str) -> bool {
    s.is_empty() || s == "?"
}

/// Pass-1 accumulator for one attribute column.
struct ColumnScan {
    /// Every non-missing cell so far parsed as `f64`.
    numeric_ok: bool,
    /// Running numeric range (valid only while `numeric_ok`).
    min: f64,
    max: f64,
    saw_value: bool,
    /// Categorical dictionary in first-appearance order.
    dict: Vec<String>,
    idx: HashMap<String, u32>,
    /// Dictionary gave up at `max_categories` (fatal unless numeric).
    overflow: bool,
}

impl ColumnScan {
    fn new() -> Self {
        ColumnScan {
            numeric_ok: true,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            saw_value: false,
            dict: Vec::new(),
            idx: HashMap::new(),
            overflow: false,
        }
    }

    fn observe(&mut self, cell: &str, max_categories: usize) {
        if is_missing(cell) {
            return;
        }
        self.saw_value = true;
        if self.numeric_ok {
            match cell.parse::<f64>() {
                Ok(v) => {
                    self.min = self.min.min(v);
                    self.max = self.max.max(v);
                }
                Err(_) => self.numeric_ok = false,
            }
        }
        // Keep the dictionary alongside the numeric range: the column may
        // stop being numeric at any later row.
        if !self.overflow && !self.idx.contains_key(cell) {
            if self.dict.len() >= max_categories {
                self.overflow = true;
                self.dict.clear();
                self.idx.clear();
            } else {
                self.idx.insert(cell.to_string(), self.dict.len() as u32);
                self.dict.push(cell.to_string());
            }
        }
    }
}

/// The resolved per-column encoder used by pass 2.
enum ColumnKind {
    /// Equal-width bins over `[min, max]`.
    Numeric {
        /// Lower range bound from pass 1.
        min: f64,
        /// `bins / (max - min)`, `0.0` for a constant column.
        scale: f64,
        /// Bin count (= attribute arity).
        bins: usize,
    },
    /// Dictionary lookup.
    Categorical(HashMap<String, u32>),
}

fn parse_cells(line: &[u8], lineno: u64) -> Result<Vec<&str>, IngestError> {
    let text = std::str::from_utf8(line).map_err(|_| IngestError::Malformed {
        line: lineno,
        msg: "invalid utf-8".into(),
    })?;
    Ok(text.split(',').map(str::trim).collect())
}

/// Streams a labelled CSV file (header row; last column = class) into a
/// transaction set using two bounded-memory passes over `path`.
pub fn ingest_csv(path: &Path, opts: &IngestOptions) -> Result<Ingested, IngestError> {
    ingest_with(|| Ok(std::fs::File::open(path)?), opts)
}

/// [`ingest_csv`] over an in-memory byte slice (tests / small inputs).
pub fn ingest_bytes(bytes: &[u8], opts: &IngestOptions) -> Result<Ingested, IngestError> {
    ingest_with(|| Ok(bytes), opts)
}

/// Core two-pass driver; `open` must yield a fresh reader over the same
/// content for each pass.
pub fn ingest_with<R: Read, F: FnMut() -> Result<R, IngestError>>(
    mut open: F,
    opts: &IngestOptions,
) -> Result<Ingested, IngestError> {
    // ---- pass 1: column kinds, dictionaries, ranges, class names ----
    let mut reader = SegmentReader::new(open()?, opts.segment_bytes);
    let mut line = Vec::new();
    if !reader.next_line(&mut line)? {
        return Err(IngestError::Malformed {
            line: 1,
            msg: "empty file".into(),
        });
    }
    let names: Vec<String> = parse_cells(&line, 1)?
        .into_iter()
        .map(str::to_string)
        .collect();
    if names.len() < 2 {
        return Err(IngestError::Malformed {
            line: 1,
            msg: "need at least one attribute column and a class column".into(),
        });
    }
    let n_attrs = names.len() - 1;

    let mut cols: Vec<ColumnScan> = (0..n_attrs).map(|_| ColumnScan::new()).collect();
    let mut class_names: Vec<String> = Vec::new();
    let mut class_idx: HashMap<String, u32> = HashMap::new();
    let mut n_rows = 0usize;
    let mut lineno = 1u64;
    while reader.next_line(&mut line)? {
        lineno += 1;
        let cells = parse_cells(&line, lineno)?;
        if cells.len() == 1 && cells[0].is_empty() {
            continue; // blank line
        }
        if cells.len() != names.len() {
            return Err(IngestError::Malformed {
                line: lineno,
                msg: format!("expected {} cells, got {}", names.len(), cells.len()),
            });
        }
        for (c, cell) in cells[..n_attrs].iter().enumerate() {
            cols[c].observe(cell, opts.max_categories);
        }
        let cls = cells[n_attrs];
        if !class_idx.contains_key(cls) {
            class_idx.insert(cls.to_string(), class_names.len() as u32);
            class_names.push(cls.to_string());
        }
        n_rows += 1;
    }

    // ---- resolve schema + per-column encoders ----
    let bins = opts.numeric_bins.max(1);
    let mut attributes = Vec::with_capacity(n_attrs);
    let mut kinds = Vec::with_capacity(n_attrs);
    for (c, scan) in cols.into_iter().enumerate() {
        if scan.numeric_ok && scan.saw_value {
            let (arity, scale) = if scan.max > scan.min {
                (bins, bins as f64 / (scan.max - scan.min))
            } else {
                (1, 0.0)
            };
            attributes.push(Attribute::categorical(
                names[c].clone(),
                (0..arity).map(|i| format!("bin{i}")).collect(),
            ));
            kinds.push(ColumnKind::Numeric {
                min: scan.min,
                scale,
                bins: arity,
            });
        } else {
            if scan.overflow {
                return Err(IngestError::TooManyValues {
                    column: names[c].clone(),
                    limit: opts.max_categories,
                });
            }
            attributes.push(Attribute::categorical(names[c].clone(), scan.dict));
            kinds.push(ColumnKind::Categorical(scan.idx));
        }
    }
    let schema = Schema::new(attributes, class_names);
    let item_map = ItemMap::from_schema(&schema);

    // ---- pass 2: emit transactions ----
    let mut reader = SegmentReader::new(open()?, opts.segment_bytes);
    if !reader.next_line(&mut line)? {
        return Err(IngestError::Malformed {
            line: 1,
            msg: "file shrank between passes".into(),
        });
    }
    let mut transactions: Vec<Transaction> = Vec::with_capacity(n_rows);
    let mut labels: Vec<ClassId> = Vec::with_capacity(n_rows);
    let mut lineno = 1u64;
    while reader.next_line(&mut line)? {
        lineno += 1;
        let cells = parse_cells(&line, lineno)?;
        if cells.len() == 1 && cells[0].is_empty() {
            continue;
        }
        if cells.len() != names.len() {
            return Err(IngestError::Malformed {
                line: lineno,
                msg: format!("expected {} cells, got {}", names.len(), cells.len()),
            });
        }
        let mut tx: Transaction = Vec::new();
        for (c, cell) in cells[..n_attrs].iter().enumerate() {
            if is_missing(cell) || !item_map.has_items(c) {
                continue;
            }
            let value = match &kinds[c] {
                ColumnKind::Numeric { min, scale, bins } => {
                    let v: f64 = cell.parse().map_err(|_| IngestError::Malformed {
                        line: lineno,
                        msg: format!("bad numeric cell {cell:?}"),
                    })?;
                    (((v - min) * scale) as usize).min(bins - 1)
                }
                ColumnKind::Categorical(idx) => {
                    *idx.get(*cell).ok_or_else(|| IngestError::Malformed {
                        line: lineno,
                        msg: format!("unknown value {cell:?} (file changed between passes?)"),
                    })? as usize
                }
            };
            tx.push(item_map.item(c, value));
        }
        // Items are emitted in ascending attribute order and item ids grow
        // with the attribute offset, so `tx` is already strictly sorted.
        let cls = cells[n_attrs];
        let label = *class_idx.get(cls).ok_or_else(|| IngestError::Malformed {
            line: lineno,
            msg: format!("unknown class {cls:?} (file changed between passes?)"),
        })?;
        transactions.push(tx);
        labels.push(ClassId(label));
    }

    let n_items = item_map.n_items();
    let n_classes = schema.n_classes().max(1);
    Ok(Ingested {
        schema,
        item_map,
        transactions: TransactionSet::new(n_items, n_classes, transactions, labels),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// dfp-fault's armed table is process-global; serialise arming tests.
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    const SAMPLE: &str = "\
color,weight,class
red,1.0,pos
blue,2.0,neg
red,?,pos
green,4.0,neg
";

    fn tiny_opts() -> IngestOptions {
        IngestOptions {
            segment_bytes: 8, // force many refills across line boundaries
            numeric_bins: 3,
            max_categories: 16,
        }
    }

    #[test]
    fn ingest_matches_expectations() {
        let out = ingest_bytes(SAMPLE.as_bytes(), &tiny_opts()).unwrap();
        assert_eq!(out.schema.class_names, vec!["pos", "neg"]);
        assert_eq!(out.schema.attributes[0].arity(), Some(3)); // red/blue/green
        assert_eq!(out.schema.attributes[1].arity(), Some(3)); // 3 bins
        let ts = &out.transactions;
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.n_items(), 6);
        // row 0: color=red (item 0), weight=1.0 → bin 0 (item 3)
        assert_eq!(ts.transaction(0), &[crate::Item(0), crate::Item(3)]);
        // row 2: weight missing → only the color item
        assert_eq!(ts.transaction(2), &[crate::Item(0)]);
        // row 3: weight=4.0 → top bin
        assert_eq!(ts.transaction(3), &[crate::Item(2), crate::Item(5)]);
        assert_eq!(
            ts.labels(),
            &[ClassId(0), ClassId(1), ClassId(0), ClassId(1)]
        );
        assert_eq!(out.item_map.name(crate::Item(3)), "weight=bin0");
    }

    #[test]
    fn segment_size_does_not_change_output() {
        let big = ingest_bytes(
            SAMPLE.as_bytes(),
            &IngestOptions {
                segment_bytes: 1 << 20,
                ..tiny_opts()
            },
        )
        .unwrap();
        let small = ingest_bytes(SAMPLE.as_bytes(), &tiny_opts()).unwrap();
        assert_eq!(
            big.transactions.transactions(),
            small.transactions.transactions()
        );
        assert_eq!(big.transactions.labels(), small.transactions.labels());
        assert_eq!(big.schema, small.schema);
    }

    #[test]
    fn matches_in_memory_reader_on_categoricals() {
        // All-categorical input: streaming ingestion and csv::read_dataset
        // must agree on schema and transactions.
        let csv = "a,b,class\nx,p,c0\ny,q,c1\nx,q,c0\n";
        let out = ingest_bytes(csv.as_bytes(), &tiny_opts()).unwrap();
        let data = crate::csv::read_dataset(csv.as_bytes()).unwrap();
        assert_eq!(out.schema, data.schema);
        let (ts, _) = data.to_transactions();
        assert_eq!(out.transactions.transactions(), ts.transactions());
        assert_eq!(out.transactions.labels(), ts.labels());
    }

    #[test]
    fn ragged_and_empty_rejected() {
        assert!(matches!(
            ingest_bytes(b"a,class\n1\n", &tiny_opts()),
            Err(IngestError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            ingest_bytes(b"", &tiny_opts()),
            Err(IngestError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            ingest_bytes(b"onlyclass\nx\n", &tiny_opts()),
            Err(IngestError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn blank_lines_and_missing_trailing_newline_ok() {
        let out = ingest_bytes(b"a,class\nx,c0\n\ny,c1", &tiny_opts()).unwrap();
        assert_eq!(out.transactions.len(), 2);
    }

    #[test]
    fn category_cap_is_typed_error() {
        let mut csv = String::from("a,class\n");
        for i in 0..20 {
            csv.push_str(&format!("v{i},c0\n"));
        }
        let err = ingest_bytes(csv.as_bytes(), &tiny_opts()).unwrap_err();
        assert!(matches!(err, IngestError::TooManyValues { limit: 16, .. }));
    }

    #[test]
    fn constant_numeric_column_is_skipped() {
        let out = ingest_bytes(b"a,b,class\n1.5,x,c0\n1.5,y,c1\n", &tiny_opts()).unwrap();
        assert_eq!(out.schema.attributes[0].arity(), Some(1));
        assert!(!out.item_map.has_items(0));
        assert_eq!(out.transactions.n_items(), 2); // just b's two values
    }

    #[test]
    fn truncated_segment_is_typed_error_not_panic() {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        dfp_fault::arm("data.ingest", dfp_fault::Action::Trunc);
        let err = ingest_bytes(SAMPLE.as_bytes(), &tiny_opts()).unwrap_err();
        dfp_fault::disarm("data.ingest");
        assert!(matches!(err, IngestError::TruncatedSegment { .. }), "{err}");
        // And the site recovers once disarmed.
        assert!(ingest_bytes(SAMPLE.as_bytes(), &tiny_opts()).is_ok());
    }

    #[test]
    fn injected_error_is_typed() {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        dfp_fault::arm("data.ingest", dfp_fault::Action::Err);
        let err = ingest_bytes(SAMPLE.as_bytes(), &tiny_opts()).unwrap_err();
        dfp_fault::disarm("data.ingest");
        assert!(matches!(err, IngestError::Injected("data.ingest")), "{err}");
    }
}
