//! Minimal ARFF reader — the native format of the UCI/Weka ecosystem the
//! paper evaluates on, so real datasets can be dropped in directly.
//!
//! Supported subset: `@relation`, `@attribute <name> numeric|real|integer`,
//! `@attribute <name> {v1,v2,…}`, `@data` with comma-separated rows, `?` for
//! missing values, `%` comments. The **last attribute is the class** and
//! must be nominal. Sparse rows, strings, dates and weights are not
//! supported (none of the paper's datasets need them).

use crate::dataset::{Dataset, Value};
use crate::schema::{Attribute, ClassId, Schema};
use std::io::{BufRead, BufReader, Read};

/// Errors produced by the ARFF loader.
#[derive(Debug)]
pub enum ArffError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Malformed(String),
}

impl std::fmt::Display for ArffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArffError::Io(e) => write!(f, "io error: {e}"),
            ArffError::Malformed(m) => write!(f, "malformed arff: {m}"),
        }
    }
}

impl std::error::Error for ArffError {}

impl From<std::io::Error> for ArffError {
    fn from(e: std::io::Error) -> Self {
        ArffError::Io(e)
    }
}

enum RawAttr {
    Numeric(String),
    Nominal(String, Vec<String>),
}

/// Reads a labelled dataset from ARFF (last attribute = nominal class).
pub fn read_dataset<R: Read>(reader: R) -> Result<Dataset, ArffError> {
    let mut attrs: Vec<RawAttr> = Vec::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut labels: Vec<ClassId> = Vec::new();
    let mut in_data = false;

    for line in BufReader::new(reader).lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if lower.starts_with("@relation") {
            continue;
        }
        if lower.starts_with("@attribute") {
            if in_data {
                return Err(ArffError::Malformed("@attribute after @data".into()));
            }
            attrs.push(parse_attribute(line)?);
            continue;
        }
        if lower.starts_with("@data") {
            if attrs.len() < 2 {
                return Err(ArffError::Malformed(
                    "need at least one attribute plus the class".into(),
                ));
            }
            match attrs.last() {
                Some(RawAttr::Nominal(..)) => {}
                _ => {
                    return Err(ArffError::Malformed(
                        "last attribute (the class) must be nominal".into(),
                    ))
                }
            }
            in_data = true;
            continue;
        }
        if !in_data {
            return Err(ArffError::Malformed(format!("unexpected line: {line}")));
        }

        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != attrs.len() {
            return Err(ArffError::Malformed(format!(
                "row has {} cells, expected {}",
                cells.len(),
                attrs.len()
            )));
        }
        let mut row = Vec::with_capacity(attrs.len() - 1);
        for (attr, cell) in attrs.iter().zip(&cells).take(attrs.len() - 1) {
            row.push(parse_cell(attr, cell)?);
        }
        let class_cell = unquote(cells[attrs.len() - 1]);
        let Some(RawAttr::Nominal(_, class_values)) = attrs.last() else {
            unreachable!("class nominality checked at @data");
        };
        if class_cell == "?" {
            return Err(ArffError::Malformed("missing class label".into()));
        }
        let class = class_values
            .iter()
            .position(|v| v == &class_cell)
            .ok_or_else(|| ArffError::Malformed(format!("unknown class {class_cell:?}")))?;
        rows.push(row);
        labels.push(ClassId(class as u32));
    }
    if !in_data {
        return Err(ArffError::Malformed("no @data section".into()));
    }

    let Some(RawAttr::Nominal(_, class_values)) = attrs.last() else {
        unreachable!("class nominality checked at @data");
    };
    let class_names = class_values.clone();
    let attributes: Vec<Attribute> = attrs[..attrs.len() - 1]
        .iter()
        .map(|a| match a {
            RawAttr::Numeric(name) => Attribute::numeric(name.clone()),
            RawAttr::Nominal(name, values) => Attribute::categorical(name.clone(), values.clone()),
        })
        .collect();
    Ok(Dataset::new(
        Schema::new(attributes, class_names),
        rows,
        labels,
    ))
}

fn parse_attribute(line: &str) -> Result<RawAttr, ArffError> {
    let rest = line["@attribute".len()..].trim();
    // name may be quoted
    let (name, rest) = if let Some(stripped) = rest.strip_prefix('\'') {
        let end = stripped
            .find('\'')
            .ok_or_else(|| ArffError::Malformed(format!("unterminated name: {line}")))?;
        (stripped[..end].to_string(), stripped[end + 1..].trim())
    } else {
        let end = rest
            .find(char::is_whitespace)
            .ok_or_else(|| ArffError::Malformed(format!("attribute without type: {line}")))?;
        (rest[..end].to_string(), rest[end..].trim())
    };
    let type_lower = rest.to_ascii_lowercase();
    if type_lower == "numeric" || type_lower == "real" || type_lower == "integer" {
        return Ok(RawAttr::Numeric(name));
    }
    if rest.starts_with('{') && rest.ends_with('}') {
        let values: Vec<String> = rest[1..rest.len() - 1]
            .split(',')
            .map(|v| unquote(v.trim()))
            .collect();
        if values.is_empty() {
            return Err(ArffError::Malformed(format!("empty nominal set: {line}")));
        }
        return Ok(RawAttr::Nominal(name, values));
    }
    Err(ArffError::Malformed(format!(
        "unsupported attribute type: {rest:?}"
    )))
}

fn parse_cell(attr: &RawAttr, cell: &str) -> Result<Value, ArffError> {
    let cell = unquote(cell);
    if cell == "?" {
        return Ok(Value::Missing);
    }
    match attr {
        RawAttr::Numeric(name) => cell
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ArffError::Malformed(format!("bad numeric cell {cell:?} for {name}"))),
        RawAttr::Nominal(name, values) => values
            .iter()
            .position(|v| v == &cell)
            .map(|i| Value::Cat(i as u32))
            .ok_or_else(|| {
                ArffError::Malformed(format!("unknown value {cell:?} for attribute {name}"))
            }),
    }
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    if s.len() >= 2
        && ((s.starts_with('\'') && s.ends_with('\'')) || (s.starts_with('"') && s.ends_with('"')))
    {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
% a tiny weather-style file
@relation weather
@attribute outlook {sunny, overcast, rainy}
@attribute temperature numeric
@attribute 'wind speed' real
@attribute play {yes, no}
@data
sunny, 85, 1.5, no
overcast, 83, 0.2, yes
rainy, ?, 3.0, yes
";

    #[test]
    fn parses_mixed_attributes() {
        let d = read_dataset(SAMPLE.as_bytes()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.schema.n_attributes(), 3);
        assert_eq!(d.schema.attributes[0].arity(), Some(3));
        assert!(d.schema.attributes[1].is_numeric());
        assert_eq!(d.schema.attributes[2].name, "wind speed");
        assert_eq!(d.schema.class_names, vec!["yes", "no"]);
        assert_eq!(d.rows[0][0], Value::Cat(0));
        assert_eq!(d.rows[2][1], Value::Missing);
        assert_eq!(d.labels, vec![ClassId(1), ClassId(0), ClassId(0)]);
    }

    #[test]
    fn rejects_numeric_class() {
        let bad = "@relation r\n@attribute a numeric\n@attribute c numeric\n@data\n1,2\n";
        assert!(matches!(
            read_dataset(bad.as_bytes()),
            Err(ArffError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_unknown_nominal_value() {
        let bad = "@relation r\n@attribute a {x,y}\n@attribute c {p,n}\n@data\nz,p\n";
        let err = read_dataset(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown value"));
    }

    #[test]
    fn rejects_ragged_rows_and_missing_data_section() {
        let bad = "@relation r\n@attribute a {x,y}\n@attribute c {p,n}\n@data\nx\n";
        assert!(read_dataset(bad.as_bytes()).is_err());
        let no_data = "@relation r\n@attribute a {x,y}\n@attribute c {p,n}\n";
        assert!(read_dataset(no_data.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = "%c\n\n@relation r\n@attribute a {x,y}\n@attribute c {p,n}\n@data\n% row comment\nx,p\n";
        let d = read_dataset(s.as_bytes()).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn pipeline_compatible() {
        // The parsed dataset feeds straight into transactions.
        let d = read_dataset(SAMPLE.as_bytes()).unwrap();
        let (cat, _) = d.discretize(&crate::discretize::EqualWidth::new(2));
        let (ts, map) = cat.to_transactions();
        assert_eq!(ts.len(), 3);
        assert!(map.n_items() >= 3);
    }
}
