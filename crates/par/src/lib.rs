//! # dfp-par — a deterministic scoped-thread parallel runtime
//!
//! The workspace vendors every dependency and cannot take `rayon`, so this
//! crate provides the minimal std-only substrate the pipeline's
//! embarrassingly-parallel stages need: per-class mining, top-level
//! FP-growth projections, the MMRFS candidate scans, cross-validation
//! folds, and batch prediction sharding.
//!
//! ## Determinism contract
//!
//! Every combinator is **order-preserving**: results come back in input
//! order no matter how the OS schedules the workers, and reductions are
//! applied in chunk order. Callers that keep their per-item work free of
//! shared mutable state therefore get **bit-identical results for any
//! worker count** — the property the workspace's parallel-equivalence
//! tests assert. With one worker (or inputs too small to split) the
//! combinators run the exact sequential code path on the calling thread.
//!
//! ## Worker-count resolution
//!
//! [`resolve_workers`] is the single source of truth for the whole
//! workspace (the `dfp-serve` pool sizes itself through it too):
//!
//! 1. an explicit caller-provided count wins;
//! 2. else the `DFP_THREADS` environment variable (a positive integer;
//!    `DFP_THREADS=1` forces the sequential path everywhere);
//! 3. else [`std::thread::available_parallelism`].
//!
//! ## Nesting
//!
//! Worker threads mark themselves, and any combinator invoked *from inside
//! a parallel region* runs sequentially — the outermost stage owns the
//! cores, so parallel cross-validation folds do not multiply against
//! parallel mining underneath them. This also keeps nested results
//! trivially deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// `true` on dfp-par worker threads: nested combinators run sequentially.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Resolves a worker count: `explicit` if given, else `DFP_THREADS`, else
/// [`std::thread::available_parallelism`]; always at least 1.
///
/// This is the workspace-wide single source of truth — `dfp-serve`'s worker
/// pool and every parallel stage size themselves through it.
pub fn resolve_workers(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("DFP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The ambient worker count: `resolve_workers(None)`.
pub fn worker_threads() -> usize {
    resolve_workers(None)
}

/// `true` when called from inside a dfp-par worker (nested parallel
/// region); combinators then fall back to the sequential path.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL.with(|c| c.get())
}

/// Workers to actually use for `n_tasks` independent tasks.
fn effective_workers(n_tasks: usize) -> usize {
    if n_tasks <= 1 || in_parallel_region() {
        return 1;
    }
    worker_threads().min(n_tasks)
}

/// Runs `task(0..n_slots)` on `workers` scoped threads with dynamic
/// (atomic-counter) scheduling and returns results in slot order.
///
/// Slot order is what makes every combinator deterministic: scheduling
/// decides *who* computes a slot, never *where* its result lands.
fn scoped_run<R, F>(n_slots: usize, workers: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let slots: Vec<Mutex<Option<R>>> = (0..n_slots).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n_slots) {
            s.spawn(|| {
                IN_PARALLEL.with(|c| c.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_slots {
                        break;
                    }
                    let r = task(i);
                    *slots[i].lock().expect("dfp-par slot poisoned") = Some(r);
                }
            });
        }
    });
    // A panicking worker propagates through `scope` above, so every slot
    // is filled here.
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("dfp-par slot poisoned")
                .expect("dfp-par slot unfilled")
        })
        .collect()
}

/// Order-preserving parallel map with one logical task per item.
///
/// Items are handed to workers dynamically, so wildly uneven per-item work
/// (e.g. FP-growth conditional trees) balances itself. Use
/// [`par_chunks_map`] instead when per-item work is tiny and uniform.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_workers(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    scoped_run(items.len(), workers, |i| f(&items[i]))
}

/// Order-preserving parallel elementwise map over contiguous chunks.
///
/// Inputs shorter than `min_chunk` (and nested calls) run sequentially;
/// larger ones split into at most `4 × workers` chunks scheduled
/// dynamically. Made for uniform per-element work: MMRFS tidset scans,
/// batch prediction rows.
pub fn par_chunks_map<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let min_chunk = min_chunk.max(1);
    let workers = effective_workers(items.len().div_ceil(min_chunk));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers * 4).max(min_chunk);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    let per_chunk: Vec<Vec<R>> = scoped_run(chunks.len(), workers, |ci| {
        chunks[ci].iter().map(&f).collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Parallel fold + deterministic reduce over contiguous chunks.
///
/// Each chunk folds from `init()` with the element's **global index**;
/// partial accumulators are then reduced sequentially **in chunk order**.
/// For the result to be bit-identical to the sequential fold, `fold` and
/// `reduce` must agree in the usual associativity sense — true for the
/// argmax-under-a-total-order reductions MMRFS uses.
pub fn par_map_reduce<T, A, I, Fold, Reduce>(
    items: &[T],
    min_chunk: usize,
    init: I,
    fold: Fold,
    reduce: Reduce,
) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    Fold: Fn(A, usize, &T) -> A + Sync,
    Reduce: Fn(A, A) -> A,
{
    let min_chunk = min_chunk.max(1);
    let workers = effective_workers(items.len().div_ceil(min_chunk));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .fold(init(), |acc, (i, t)| fold(acc, i, t));
    }
    let chunk = items.len().div_ceil(workers * 4).max(min_chunk);
    let ranges: Vec<std::ops::Range<usize>> = (0..items.len())
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(items.len()))
        .collect();
    let partials: Vec<A> = scoped_run(ranges.len(), workers, |ci| {
        let range = ranges[ci].clone();
        items[range.clone()]
            .iter()
            .zip(range)
            .fold(init(), |acc, (t, i)| fold(acc, i, t))
    });
    partials.into_iter().reduce(reduce).unwrap_or_else(init)
}

/// Runs heterogeneous-workload tasks (same closure *type*, e.g. built from
/// one `map`) and returns their results **in task order**. At most
/// `worker_threads()` run at once.
pub fn par_join_n<R, F>(tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let workers = effective_workers(tasks.len());
    if workers <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let inputs: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    scoped_run(inputs.len(), workers, |i| {
        let task = inputs[i]
            .lock()
            .expect("dfp-par task poisoned")
            .take()
            .expect("dfp-par task taken twice");
        task()
    })
}

/// Parallel in-place pass over contiguous mutable chunks; `f` receives each
/// chunk and the global index of its first element. Elementwise writes make
/// this bit-identical for any worker count (MMRFS's redundancy-cache
/// update pass).
pub fn par_chunks_mut<T, F>(data: &mut [T], min_chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let min_chunk = min_chunk.max(1);
    let workers = effective_workers(data.len().div_ceil(min_chunk));
    if workers <= 1 {
        f(0, data);
        return;
    }
    let chunk = data.len().div_ceil(workers).max(min_chunk);
    std::thread::scope(|s| {
        let mut offset = 0usize;
        for c in data.chunks_mut(chunk) {
            let len = c.len();
            let f = &f;
            s.spawn(move || {
                IN_PARALLEL.with(|cell| cell.set(true));
                f(offset, c);
            });
            offset += len;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that mutate `DFP_THREADS` (process-global).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("DFP_THREADS", n);
        let r = f();
        std::env::remove_var("DFP_THREADS");
        r
    }

    #[test]
    fn resolve_workers_precedence() {
        with_threads("3", || {
            assert_eq!(resolve_workers(None), 3);
            assert_eq!(resolve_workers(Some(7)), 7);
            assert_eq!(resolve_workers(Some(0)), 1);
        });
        with_threads("0", || {
            // invalid value falls through to available_parallelism
            assert!(resolve_workers(None) >= 1);
        });
        with_threads("not-a-number", || {
            assert!(resolve_workers(None) >= 1);
        });
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in ["1", "4"] {
            let got = with_threads(threads, || par_map(&items, |&x| x * 2));
            assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_map_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in ["1", "2", "8"] {
            let got = with_threads(threads, || par_chunks_map(&items, 16, |&x| x * x));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn par_map_reduce_argmax_deterministic() {
        // keys engineered with ties: reduce must pick the same element the
        // sequential strict-improvement scan picks.
        let items: Vec<u64> = (0..5000).map(|i| (i * 7919) % 1000).collect();
        let seq = items
            .iter()
            .enumerate()
            .fold(None::<(u64, usize)>, |acc, (i, &v)| match acc {
                Some((bv, bi)) if v <= bv => Some((bv, bi)),
                _ => Some((v, i)),
            });
        for threads in ["1", "4"] {
            let got = with_threads(threads, || {
                par_map_reduce(
                    &items,
                    8,
                    || None::<(u64, usize)>,
                    |acc, i, &v| match acc {
                        Some((bv, bi)) if v <= bv => Some((bv, bi)),
                        _ => Some((v, i)),
                    },
                    |a, b| match (a, b) {
                        (Some((av, ai)), Some((bv, bi))) => {
                            if bv > av {
                                Some((bv, bi))
                            } else {
                                Some((av, ai))
                            }
                        }
                        (x, None) => x,
                        (None, y) => y,
                    },
                )
            });
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_join_n_order_and_concurrency() {
        let tasks: Vec<_> = (0..16).map(|i| move || i * i).collect();
        let got = with_threads("4", || par_join_n(tasks));
        assert_eq!(got, (0..16).map(|i| i * i).collect::<Vec<i32>>());
    }

    #[test]
    fn par_chunks_mut_covers_every_element_once() {
        let mut data: Vec<usize> = vec![0; 4097];
        with_threads("4", || {
            par_chunks_mut(&mut data, 64, |offset, chunk| {
                for (d, x) in chunk.iter_mut().enumerate() {
                    *x += offset + d + 1;
                }
            })
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn nested_calls_run_sequentially() {
        let outer: Vec<usize> = (0..8).collect();
        let got = with_threads("4", || {
            par_map(&outer, |&i| {
                assert!(in_parallel_region());
                // nested call must not deadlock or over-spawn
                let inner: Vec<usize> = (0..100).collect();
                par_map(&inner, |&j| j).len() + i
            })
        });
        assert_eq!(got, (0..8).map(|i| 100 + i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert!(par_chunks_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(
            par_map_reduce(&empty, 8, || 42u32, |a, _, &x| a + x, |a, b| a + b),
            42
        );
        let tasks: Vec<fn() -> u32> = Vec::new();
        assert!(par_join_n(tasks).is_empty());
        let mut data: Vec<u32> = Vec::new();
        par_chunks_mut(&mut data, 8, |_, _| {});
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            with_threads("4", || {
                par_map(&items, |&i| {
                    if i == 13 {
                        panic!("boom");
                    }
                    i
                })
            })
        });
        assert!(r.is_err());
    }
}
