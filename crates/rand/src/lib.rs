//! Vendored, std-only stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no crates.io access, so the
//! real `rand` can never be fetched; this crate keeps the same import paths
//! (`rand::rngs::StdRng`, `rand::Rng`, `rand::SeedableRng`,
//! `rand::seq::{SliceRandom, IndexedRandom}`) so call sites compile
//! unchanged.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — a
//! high-quality, deterministic, non-cryptographic PRNG. Streams differ from
//! upstream `rand` (which uses ChaCha12 for `StdRng`); everything in this
//! repository only relies on *determinism per seed*, never on specific
//! streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from (subset of `rand::distr` machinery).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce(rng, span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng, span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Debiased bounded sampling: uniform in `[0, span)` (`span > 0`).
fn reduce<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the widest prefix of `[0, 2^64)` that is a
    // multiple of `span` — unbiased. `rem = 2^64 mod span`, computed without
    // overflowing: 2^64 ≡ (u64::MAX mod span) + 1 (mod span).
    let rem = ((u64::MAX % span) + 1) % span;
    let zone = u64::MAX - rem;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Core generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` over its natural domain (`[0,1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per the
            // xoshiro authors' recommendation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place shuffling of slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, deterministic given the generator state.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (super::reduce(rng, (i + 1) as u64)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element selection (subset of `rand::seq::IndexedRandom`).
    pub trait IndexedRandom {
        /// The element type.
        type Output;
        /// Uniformly chooses one element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(super::reduce(rng, self.len() as u64)) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..8);
            assert!((3..8).contains(&v));
            let w = rng.random_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice fixed");
    }

    #[test]
    fn choose_uniformish_and_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
        let opts = [1u32, 2, 3];
        for _ in 0..50 {
            assert!(opts.contains(opts.as_slice().choose(&mut rng).unwrap()));
        }
    }
}
