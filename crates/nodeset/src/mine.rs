//! Set-enumeration frequent itemset mining over nodesets and
//! DiffNodesets.
//!
//! A pattern `P` is represented by `B(P)`: the nodes labeled with `P`'s
//! *least frequent* item whose ancestor paths contain every other item of
//! `P`. Since a transaction passes through exactly one such node,
//! `support(P) = Σ count(n), n ∈ B(P)` — exact, no recounting.
//!
//! Enumeration is an Eclat-shaped DFS: each frequent item `e` roots a
//! pattern `{e}` with `B = N(e)` (its nodeset), candidate extensions are
//! the items *more frequent than* `e`, and a candidate list entry carries
//! the set for `current pattern ∪ {y}`. Two representations share the
//! DFS:
//!
//! * **plain nodesets** (`Mode::Plain`, FIN): the entry stores
//!   `B(P ∪ {y})`; extending `P` with `x` refines every remaining `y` by
//!   node-identity intersection, `B(P∪{x,y}) = B(P∪{x}) ∩ B(P∪{y})` —
//!   both operands are subsets of `N(e)` and the ancestor constraints
//!   conjoin;
//! * **DiffNodesets** (`Mode::Diff`, dFIN): the entry stores
//!   `DN(P ∪ {y}) = B(P) − B(P ∪ {y})` — what the extension *removes* —
//!   and `support(P∪{y}) = support(P) − Σ count(DN)`. The refinement is
//!   a set difference, `DN(P∪{x,y}) = DN(P∪{y}) − DN(P∪{x})`: a node of
//!   `B(P∪{x})` fails the `y` constraint exactly when it failed it under
//!   `P`. On dense data consecutive patterns share most covering nodes,
//!   so diffsets are far smaller than the nodesets they replace.
//!
//! The level-2 seeds come from one linear merge per item pair: `N(e)` and
//! `N(y)` both ascend in pre *and* post order (same-label nodes have
//! disjoint subtrees), so a two-pointer pass splits `N(e)` into the nodes
//! with and without a `y`-ancestor using the O(1) pre/post test.
//!
//! [`Mode::Auto`] picks Diff when the projected database's density
//! reaches [`DENSE_DIFF_THRESHOLD`], Plain otherwise. Both modes emit
//! identical patterns in identical order (property-tested), so the
//! switch is invisible to callers — including budget truncation.

use crate::tree::PpcTree;
use crate::{Limits, NodesetMined, Pattern, Stop};
use dfp_data::transactions::{Item, TransactionSet};
use std::time::Instant;

/// Projected-database density (mean fraction of the frequent-item
/// universe per transaction) at or above which [`Mode::Auto`] uses
/// DiffNodesets.
pub const DENSE_DIFF_THRESHOLD: f64 = 0.25;

/// Which pattern representation the DFS carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Pick from the database: Diff when dense, Plain when sparse.
    #[default]
    Auto,
    /// Plain nodesets (FIN) — intersection refinement.
    Plain,
    /// DiffNodesets (dFIN) — difference refinement.
    Diff,
}

/// Mines all frequent itemsets with absolute support `>= min_sup`,
/// best-so-far under the limits, choosing the representation by density.
///
/// The budget/determinism contract matches the workspace miners: the
/// pattern stream (and its truncation at `max_patterns`) is bit-identical
/// for every `DFP_THREADS`. An armed `mining.nodeset` failpoint degrades
/// to an empty incomplete result.
///
/// # Panics
/// Panics if `min_sup == 0` (callers gate on it — the `dfp-mining`
/// adapter returns its `ZeroMinSup` error instead).
pub fn mine_anytime(ts: &TransactionSet, min_sup: usize, limits: &Limits) -> NodesetMined {
    mine_anytime_in(ts, min_sup, limits, Mode::Auto)
}

/// [`mine_anytime`] with an explicit representation — the equivalence
/// tests force both modes over the same databases.
pub fn mine_anytime_in(
    ts: &TransactionSet,
    min_sup: usize,
    limits: &Limits,
    mode: Mode,
) -> NodesetMined {
    assert!(min_sup > 0, "absolute min_sup must be at least 1");
    let mut sp = dfp_obs::span("mine.nodeset");
    if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("mining.nodeset") {
        return NodesetMined::stopped(Vec::new(), Stop::Fault);
    }
    let tree = PpcTree::build(ts, min_sup);
    let diff = match mode {
        Mode::Plain => false,
        Mode::Diff => true,
        Mode::Auto => tree.density() >= DENSE_DIFF_THRESHOLD,
    };

    // One task per frequent item, least frequent first (the processing
    // order of the other workspace miners). Each task explores the
    // patterns whose least frequent item is its root, sequentially; the
    // merge truncates the task-ordered concatenation at the cumulative
    // budget, so the surviving prefix equals a sequential run's.
    let roots: Vec<u32> = (0..tree.n_frequent() as u32).rev().collect();
    let pairs = tree.pair_supports();
    let results: Vec<(Vec<Pattern>, Option<Stop>, u64)> = dfp_par::par_map(&roots, |&e| {
        let mut out = Vec::new();
        let mut nodes = 0u64;
        let stop = mine_root(
            &tree, &pairs, diff, e, min_sup, limits, &mut out, &mut nodes,
        )
        .err();
        (out, stop, nodes)
    });
    let nodes: u64 = results.iter().map(|(_, _, n)| n).sum();
    let mined = merge_task_outputs(
        results.into_iter().map(|(o, s, _)| (o, s)).collect(),
        limits,
    );
    dfp_obs::metrics::dfp::mine_nodes_explored().add(nodes);
    dfp_obs::metrics::dfp::mine_patterns_emitted().add(mined.patterns.len() as u64);
    sp.attr("min_sup", min_sup);
    sp.attr("mode", if diff { "diff" } else { "plain" });
    sp.attr("density", format!("{:.4}", tree.density()));
    sp.attr("nodes", nodes);
    sp.attr("patterns", mined.patterns.len());
    mined
}

/// A candidate extension during the DFS: the pattern `current ∪ {local}`,
/// its exact support, and its node list (a `B`-set in plain mode, a
/// `DN`-diffset in diff mode), ascending by node id.
struct Cand {
    local: u32,
    support: u32,
    set: Vec<u32>,
}

/// Mines every pattern whose least frequent item is `e` — the body of one
/// parallel task. Emits `{e}` first, then DFS-extends with more frequent
/// items in descending local rank. `pairs` is the precomputed level-2
/// support matrix from [`PpcTree::pair_supports`].
#[allow(clippy::too_many_arguments)]
fn mine_root(
    tree: &PpcTree,
    pairs: &[u32],
    diff: bool,
    e: u32,
    min_sup: usize,
    limits: &Limits,
    out: &mut Vec<Pattern>,
    nodes: &mut u64,
) -> Result<(), Stop> {
    *nodes += 1;
    let root_support = tree.item_support(e);
    let mut prefix = vec![e];
    if limits.len_ok(1) {
        emit(tree, &prefix, root_support, out);
        check_stop(out.len(), limits)?;
    }
    if !limits.may_extend(1) || e == 0 {
        return Ok(());
    }
    // Level-2 seeds: split N(e) by "has a y-ancestor" for each more
    // frequent y, keeping the kept-nodes (plain) or removed-nodes (diff)
    // side. The precomputed pair matrix answers the frequency check
    // first, so infrequent extensions — pruned here and never reappearing
    // deeper (anti-monotonicity) — cost no merge at all.
    let ne = tree.nodeset(e);
    let m = tree.n_frequent();
    let mut cands: Vec<Cand> = Vec::new();
    for y in (0..e).rev() {
        *nodes += 1;
        if (pairs[e as usize * m + y as usize] as usize) < min_sup {
            continue;
        }
        // `set` holds the with-ancestor side (B) in plain mode and the
        // without-ancestor side (DN, Σcount = root_support − support) in
        // diff mode; the support of {e, y} is the covered sum either way.
        let (set, support) = split_by_ancestor(tree, ne, tree.nodeset(y), diff);
        debug_assert_eq!(support, pairs[e as usize * m + y as usize]);
        cands.push(Cand {
            local: y,
            support,
            set,
        });
    }
    dfs(tree, diff, &cands, &mut prefix, min_sup, limits, out, nodes)
}

/// DFS over an equivalence class: `cands[i]` extends the current prefix;
/// its own extensions are refined from `cands[i+1..]`.
#[allow(clippy::too_many_arguments)]
fn dfs(
    tree: &PpcTree,
    diff: bool,
    cands: &[Cand],
    prefix: &mut Vec<u32>,
    min_sup: usize,
    limits: &Limits,
    out: &mut Vec<Pattern>,
    nodes: &mut u64,
) -> Result<(), Stop> {
    for (i, c) in cands.iter().enumerate() {
        prefix.push(c.local);
        if limits.len_ok(prefix.len()) {
            emit(tree, prefix, c.support, out);
            check_stop(out.len(), limits)?;
        }
        if limits.may_extend(prefix.len()) && i + 1 < cands.len() {
            let mut children: Vec<Cand> = Vec::new();
            for y in &cands[i + 1..] {
                *nodes += 1;
                let (set, support) = refine(tree, diff, c, y);
                if (support as usize) >= min_sup {
                    children.push(Cand {
                        local: y.local,
                        support,
                        set,
                    });
                }
            }
            if !children.is_empty() {
                dfs(tree, diff, &children, prefix, min_sup, limits, out, nodes)?;
            }
        }
        prefix.pop();
    }
    Ok(())
}

/// Refines candidate `y` through chosen extension `x` (both relative to
/// the same parent pattern `P`):
///
/// * plain — `B(P∪{x,y}) = B(P∪{x}) ∩ B(P∪{y})`, support is its count sum;
/// * diff — `DN(P∪{x,y}) = DN(P∪{y}) − DN(P∪{x})`,
///   `support = support(P∪{x}) − Σ count(DN)`.
fn refine(tree: &PpcTree, diff: bool, x: &Cand, y: &Cand) -> (Vec<u32>, u32) {
    if diff {
        let set = difference(&y.set, &x.set);
        let removed: u32 = set.iter().map(|&n| tree.node_count(n)).sum();
        (set, x.support - removed)
    } else {
        let set = intersect(&x.set, &y.set);
        let support: u32 = set.iter().map(|&n| tree.node_count(n)).sum();
        (set, support)
    }
}

/// Splits `ne` (nodes labeled `e`) by the existence of an ancestor in
/// `ny` (nodes labeled `y`). Returns the kept side — nodes *with* such an
/// ancestor in plain mode, nodes *without* one in diff mode — plus the
/// covered support `Σ count(n), n has y-ancestor` (= `support({e, y})`).
///
/// Linear two-pointer merge: both lists ascend in pre and post order, and
/// an ancestor must satisfy `pre < n.pre && post > n.post`, so a `y` node
/// whose subtree closed before `n`'s can never cover a later `n` either.
fn split_by_ancestor(tree: &PpcTree, ne: &[u32], ny: &[u32], diff: bool) -> (Vec<u32>, u32) {
    let mut set = Vec::new();
    let mut covered = 0u32;
    let mut j = 0usize;
    for &n in ne {
        while j < ny.len() && tree.node_post(ny[j]) < tree.node_post(n) {
            j += 1;
        }
        let has_anc = j < ny.len() && tree.is_ancestor(ny[j], n);
        if has_anc {
            covered += tree.node_count(n);
        }
        if has_anc != diff {
            set.push(n);
        }
    }
    (set, covered)
}

/// Node-identity intersection of two ascending node lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Node-identity difference `a − b` of two ascending node lists.
fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0usize;
    for &n in a {
        while j < b.len() && b[j] < n {
            j += 1;
        }
        if j >= b.len() || b[j] != n {
            out.push(n);
        }
    }
    out
}

/// Emits the prefix (local ranks) as a pattern in global item order.
fn emit(tree: &PpcTree, prefix: &[u32], support: u32, out: &mut Vec<Pattern>) {
    let mut items: Vec<Item> = prefix.iter().map(|&l| Item(tree.global(l))).collect();
    items.sort_unstable();
    out.push(Pattern { items, support });
}

/// Per-emission stop conditions, mirroring `dfp-mining`'s: budget first
/// (`n_emitted` strictly past the cap), then the deadline.
fn check_stop(n_emitted: usize, limits: &Limits) -> Result<(), Stop> {
    if let Some(cap) = limits.max_patterns {
        if n_emitted as u64 > cap {
            return Err(Stop::PatternBudget);
        }
    }
    if let Some(deadline) = limits.deadline {
        if Instant::now() >= deadline {
            return Err(Stop::Deadline);
        }
    }
    Ok(())
}

/// Concatenates per-task streams in task order, truncating at the
/// cumulative budget — the same merge the other workspace miners use, so
/// budget stops are bit-identical across thread counts.
fn merge_task_outputs(results: Vec<(Vec<Pattern>, Option<Stop>)>, limits: &Limits) -> NodesetMined {
    let mut out = Vec::new();
    for (task_out, task_stop) in results {
        out.extend(task_out);
        if let Some(cap) = limits.max_patterns {
            if out.len() as u64 > cap {
                out.truncate(cap as usize);
                return NodesetMined::stopped(out, Stop::PatternBudget);
            }
        }
        if let Some(reason) = task_stop {
            return NodesetMined::stopped(out, reason);
        }
    }
    NodesetMined::complete(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;
    use proptest::prelude::*;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    fn classic() -> TransactionSet {
        db(&[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]])
    }

    fn canonical(mut pats: Vec<Pattern>) -> Vec<(Vec<u32>, u32)> {
        pats.sort_by(|a, b| {
            a.items
                .len()
                .cmp(&b.items.len())
                .then_with(|| a.items.cmp(&b.items))
        });
        pats.into_iter()
            .map(|p| (p.items.iter().map(|i| i.0).collect(), p.support))
            .collect()
    }

    #[test]
    fn known_counts_on_classic_db() {
        for mode in [Mode::Plain, Mode::Diff, Mode::Auto] {
            let got = mine_anytime_in(&classic(), 2, &Limits::default(), mode);
            assert!(got.complete);
            assert_eq!(
                canonical(got.patterns),
                vec![
                    (vec![0], 3),
                    (vec![1], 4),
                    (vec![2], 2),
                    (vec![3], 2),
                    (vec![0, 1], 2),
                    (vec![1, 3], 2),
                ],
                "{mode:?}"
            );
        }
    }

    #[test]
    fn supports_exact_at_min_sup_one() {
        let ts = classic();
        for mode in [Mode::Plain, Mode::Diff] {
            let got = mine_anytime_in(&ts, 1, &Limits::default(), mode);
            assert!(got.complete);
            for p in &got.patterns {
                assert_eq!(
                    p.support as usize,
                    ts.support(&p.items),
                    "{mode:?} {:?}",
                    p.items
                );
            }
        }
    }

    #[test]
    fn length_limits_respected() {
        let limits = Limits {
            min_len: 2,
            max_len: Some(2),
            ..Limits::default()
        };
        let got = mine_anytime(&classic(), 1, &limits);
        assert!(got.complete);
        assert!(got.patterns.iter().all(|p| p.items.len() == 2));
    }

    #[test]
    fn budget_truncates_and_flags() {
        let limits = Limits {
            max_patterns: Some(3),
            ..Limits::default()
        };
        let got = mine_anytime(&classic(), 1, &limits);
        assert!(!got.complete);
        assert_eq!(got.stopped_by, Some(Stop::PatternBudget));
        assert_eq!(got.patterns.len(), 3);
        // The kept prefix is the unbudgeted stream's prefix.
        let full = mine_anytime(&classic(), 1, &Limits::default());
        assert_eq!(got.patterns[..], full.patterns[..3]);
    }

    #[test]
    fn fault_degrades_to_empty_incomplete() {
        dfp_fault::arm("mining.nodeset", dfp_fault::Action::Err);
        let got = mine_anytime(&classic(), 1, &Limits::default());
        dfp_fault::disarm("mining.nodeset");
        assert!(!got.complete);
        assert_eq!(got.stopped_by, Some(Stop::Fault));
        assert!(got.patterns.is_empty());
    }

    #[test]
    fn empty_database() {
        let got = mine_anytime(&db(&[]), 1, &Limits::default());
        assert!(got.complete);
        assert!(got.patterns.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Plain and Diff emit identical streams (order included) on
        /// random databases — the mode switch is invisible.
        #[test]
        fn plain_and_diff_agree(
            txs in prop::collection::vec(
                prop::collection::btree_set(0u32..9, 0..=6), 1..=14),
            min_sup in 1usize..4,
        ) {
            let rows: Vec<Vec<u32>> = txs.into_iter()
                .map(|s| s.into_iter().collect()).collect();
            let refs: Vec<&[u32]> = rows.iter().map(|r| &r[..]).collect();
            let ts = db(&refs);
            let plain = mine_anytime_in(&ts, min_sup, &Limits::default(), Mode::Plain);
            let diff = mine_anytime_in(&ts, min_sup, &Limits::default(), Mode::Diff);
            prop_assert_eq!(plain, diff);
        }
    }
}
