//! The PPC-tree: a prefix tree over frequency-ordered transactions whose
//! nodes carry pre-order and post-order codes.
//!
//! Structure and coding follow the PrePost/FIN construction: items below
//! `min_sup` are dropped, the survivors are ranked by descending count
//! (ties by ascending id) into *local* ids `0..m`, each transaction is
//! projected onto its frequent items sorted by local id, and the projected
//! transactions are inserted into a counted trie. A DFS then assigns every
//! node its pre-order number (which doubles as the node's index — the
//! arena is stored in pre-order), its post-order number, and the start of
//! its transaction-id interval.
//!
//! Two coded nodes answer ancestry in O(1):
//! `a` is an ancestor of `b` iff `a.pre < b.pre && a.post > b.post`
//! (a DFS enters every ancestor before, and leaves it after, each of its
//! descendants; for any two nodes *not* in ancestry relation, pre- and
//! post-order agree because their subtrees are disjoint).
//!
//! Transaction-id intervals: order the projected transactions by the DFS
//! position of the node their path ends on. Every transaction through a
//! node `n` ends inside `n`'s subtree, so the transactions covering `n`
//! form the contiguous block `[lo(n), lo(n) + count(n))` — the basis of
//! the closed-set cover filter in [`crate::cover`].

use dfp_data::transactions::TransactionSet;

/// The coded prefix tree plus per-item node lists (nodesets).
///
/// Node indices *are* pre-order numbers; index 0 is the synthetic root
/// (no item label). Per-node arrays are indexed by that number.
#[derive(Debug)]
pub struct PpcTree {
    /// Global item id per local rank (descending count, ties ascending id).
    frequent: Vec<u32>,
    /// Local rank per global item id; `u32::MAX` = infrequent.
    local_of: Vec<u32>,
    /// Local item label per node; `u32::MAX` on the root.
    item: Vec<u32>,
    /// Transactions through each node.
    count: Vec<u32>,
    /// Post-order number per node (pre-order is the index itself).
    post: Vec<u32>,
    /// Parent node per node (the root points at itself).
    parent: Vec<u32>,
    /// Start of each node's transaction-id interval.
    lo: Vec<u32>,
    /// Node lists per local item, ascending pre-order (same-label nodes
    /// are never ancestors of one another, so post-order ascends too).
    nodesets: Vec<Vec<u32>>,
    /// Total support per local item (over the full database).
    supports: Vec<u32>,
    /// Transactions with at least one frequent item (interval space size).
    n_covered: u32,
    /// Mean fraction of the frequent-item universe present per projected
    /// transaction — the dense/sparse mode signal.
    density: f64,
}

/// A trie node during construction, before pre-order renumbering.
struct Raw {
    item: u32,
    count: u32,
    /// `(local item, raw child index)`, sorted by item for binary search.
    children: Vec<(u32, usize)>,
}

impl PpcTree {
    /// Builds the tree over `ts` at absolute support `min_sup` (≥ 1).
    pub fn build(ts: &TransactionSet, min_sup: usize) -> PpcTree {
        let n_items = ts.n_items();
        let mut counts = vec![0u64; n_items];
        for tx in ts.transactions() {
            for it in tx {
                counts[it.index()] += 1;
            }
        }
        let mut frequent: Vec<u32> = (0..n_items as u32)
            .filter(|&i| counts[i as usize] >= min_sup as u64)
            .collect();
        frequent.sort_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b)));
        let mut local_of = vec![u32::MAX; n_items];
        for (local, &global) in frequent.iter().enumerate() {
            local_of[global as usize] = local as u32;
        }

        // Counted trie over the projected, local-ordered transactions.
        let mut raw: Vec<Raw> = vec![Raw {
            item: u32::MAX,
            count: 0,
            children: Vec::new(),
        }];
        let mut n_covered = 0u32;
        let mut present_sum = 0u64;
        let mut loc = Vec::new();
        for tx in ts.transactions() {
            loc.clear();
            loc.extend(tx.iter().filter_map(|it| {
                let l = local_of[it.index()];
                (l != u32::MAX).then_some(l)
            }));
            if loc.is_empty() {
                continue;
            }
            loc.sort_unstable();
            n_covered += 1;
            present_sum += loc.len() as u64;
            let mut cur = 0usize;
            raw[cur].count += 1;
            for &l in &loc {
                cur = match raw[cur].children.binary_search_by_key(&l, |&(i, _)| i) {
                    Ok(pos) => raw[cur].children[pos].1,
                    Err(pos) => {
                        let id = raw.len();
                        raw.push(Raw {
                            item: l,
                            count: 0,
                            children: Vec::new(),
                        });
                        raw[cur].children.insert(pos, (l, id));
                        id
                    }
                };
                raw[cur].count += 1;
            }
        }

        // Pre-order renumbering DFS: assign pre (= final index), post, and
        // the transaction-interval start. `ends(n)` — transactions whose
        // projected path stops exactly at `n` — is consumed at entry, so
        // the interval cursor advances in end-node DFS order.
        let n = raw.len();
        let mut item = vec![0u32; n];
        let mut count = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut parent = vec![0u32; n];
        let mut lo = vec![0u32; n];
        let mut nodesets: Vec<Vec<u32>> = vec![Vec::new(); frequent.len()];
        let mut pre_of = vec![0u32; n];
        let mut next_pre = 0u32;
        let mut next_post = 0u32;
        let mut cursor = 0u32;
        // (raw id, next child position); entry work happens on push.
        #[allow(clippy::too_many_arguments)]
        fn enter(
            r: usize,
            raw: &[Raw],
            pre_of: &mut [u32],
            item: &mut [u32],
            count: &mut [u32],
            lo: &mut [u32],
            nodesets: &mut [Vec<u32>],
            next_pre: &mut u32,
            cursor: &mut u32,
        ) {
            let pre = *next_pre;
            *next_pre += 1;
            pre_of[r] = pre;
            item[pre as usize] = raw[r].item;
            count[pre as usize] = raw[r].count;
            lo[pre as usize] = *cursor;
            let child_sum: u32 = raw[r].children.iter().map(|&(_, c)| raw[c].count).sum();
            *cursor += raw[r].count - child_sum;
            if raw[r].item != u32::MAX {
                nodesets[raw[r].item as usize].push(pre);
            }
        }
        let mut stack: Vec<(usize, usize)> = Vec::new();
        enter(
            0,
            &raw,
            &mut pre_of,
            &mut item,
            &mut count,
            &mut lo,
            &mut nodesets,
            &mut next_pre,
            &mut cursor,
        );
        stack.push((0, 0));
        while let Some(top) = stack.last_mut() {
            let (r, ci) = (top.0, top.1);
            if ci < raw[r].children.len() {
                top.1 += 1;
                let child = raw[r].children[ci].1;
                enter(
                    child,
                    &raw,
                    &mut pre_of,
                    &mut item,
                    &mut count,
                    &mut lo,
                    &mut nodesets,
                    &mut next_pre,
                    &mut cursor,
                );
                parent[pre_of[child] as usize] = pre_of[r];
                stack.push((child, 0));
            } else {
                post[pre_of[r] as usize] = next_post;
                next_post += 1;
                stack.pop();
            }
        }

        let supports: Vec<u32> = frequent
            .iter()
            .map(|&g| counts[g as usize] as u32)
            .collect();
        let density = if n_covered == 0 || frequent.is_empty() {
            0.0
        } else {
            present_sum as f64 / (n_covered as f64 * frequent.len() as f64)
        };
        PpcTree {
            frequent,
            local_of,
            item,
            count,
            post,
            parent,
            lo,
            nodesets,
            supports,
            n_covered,
            density,
        }
    }

    /// Exact supports of every frequent item *pair*, as a dense `m × m`
    /// matrix over local ranks: entry `a·m + b` (for `b` ranked above `a`,
    /// i.e. `b < a`) is `support({a, b})`; the rest stays 0.
    ///
    /// One ancestor-chain walk per node (`Σ depth(n)` adds in total)
    /// replaces a two-pointer nodeset merge per item pair — the PrePost
    /// trick that lets the miner skip infrequent level-2 extensions
    /// without ever materialising their node lists.
    pub fn pair_supports(&self) -> Vec<u32> {
        let m = self.frequent.len();
        let mut pairs = vec![0u32; m * m];
        for n in 1..self.item.len() {
            let i = self.item[n] as usize;
            let c = self.count[n];
            let mut a = self.parent[n] as usize;
            while a != 0 {
                pairs[i * m + self.item[a] as usize] += c;
                a = self.parent[a] as usize;
            }
        }
        pairs
    }

    /// Number of frequent items (the local-id universe).
    pub fn n_frequent(&self) -> usize {
        self.frequent.len()
    }

    /// Global item id behind a local rank.
    pub fn global(&self, local: u32) -> u32 {
        self.frequent[local as usize]
    }

    /// Local rank of a global item, `None` when infrequent.
    pub fn local(&self, global: u32) -> Option<u32> {
        let l = *self.local_of.get(global as usize)?;
        (l != u32::MAX).then_some(l)
    }

    /// Exact support of a local item over the full database.
    pub fn item_support(&self, local: u32) -> u32 {
        self.supports[local as usize]
    }

    /// The item's nodes, ascending pre-order (and post-order).
    pub fn nodeset(&self, local: u32) -> &[u32] {
        &self.nodesets[local as usize]
    }

    /// Total nodes, root included (node ids are `0..n_nodes`).
    pub fn n_nodes(&self) -> usize {
        self.item.len()
    }

    /// Local item label of node `n`; `None` on the root.
    pub fn node_item(&self, n: u32) -> Option<u32> {
        let i = self.item[n as usize];
        (i != u32::MAX).then_some(i)
    }

    /// Transactions through node `n`.
    pub fn node_count(&self, n: u32) -> u32 {
        self.count[n as usize]
    }

    /// Post-order number of node `n`.
    pub fn node_post(&self, n: u32) -> u32 {
        self.post[n as usize]
    }

    /// Start of node `n`'s transaction-id interval
    /// (`[lo, lo + count)` covers exactly the transactions through `n`).
    pub fn node_interval(&self, n: u32) -> (u32, u32) {
        let lo = self.lo[n as usize];
        (lo, lo + self.count[n as usize])
    }

    /// O(1) ancestor test on pre/post codes (`a` strictly above `b`).
    pub fn is_ancestor(&self, a: u32, b: u32) -> bool {
        a < b && self.post[a as usize] > self.post[b as usize]
    }

    /// Transactions carrying at least one frequent item.
    pub fn covered_transactions(&self) -> u32 {
        self.n_covered
    }

    /// Mean fraction of the frequent-item universe present per projected
    /// transaction, in `[0, 1]` — the dense/sparse switch signal.
    pub fn density(&self) -> f64 {
        self.density
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;
    use dfp_data::transactions::Item;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    fn classic() -> TransactionSet {
        db(&[&[0, 1, 4], &[1, 3], &[1, 2], &[0, 1, 3], &[0, 2]])
    }

    #[test]
    fn frequency_ranking_and_supports() {
        let t = PpcTree::build(&classic(), 2);
        // counts: i0=3, i1=4, i2=2, i3=2, i4=1 → ranks 1,0,2,3; 4 dropped.
        assert_eq!(t.n_frequent(), 4);
        assert_eq!(t.global(0), 1);
        assert_eq!(t.global(1), 0);
        assert_eq!(t.local(4), None);
        assert_eq!(t.item_support(0), 4);
        assert_eq!(t.item_support(1), 3);
    }

    #[test]
    fn pre_post_codes_answer_ancestry() {
        let t = PpcTree::build(&classic(), 1);
        for a in 0..t.n_nodes() as u32 {
            for b in 0..t.n_nodes() as u32 {
                // Independent ancestry: walk pre/post as ranges — a node's
                // descendants are exactly the later-pre, earlier-post nodes,
                // which the DFS numbering makes nested, so cross-check via
                // interval containment of (pre, post) pairs.
                let by_codes = t.is_ancestor(a, b);
                if by_codes {
                    assert!(a < b && t.node_post(a) > t.node_post(b));
                }
                if a == 0 && b != 0 {
                    assert!(by_codes, "root must be everyone's ancestor");
                }
            }
        }
    }

    #[test]
    fn nodeset_counts_sum_to_item_support() {
        let t = PpcTree::build(&classic(), 1);
        for l in 0..t.n_frequent() as u32 {
            let total: u32 = t.nodeset(l).iter().map(|&n| t.node_count(n)).sum();
            assert_eq!(total, t.item_support(l), "local {l}");
        }
    }

    #[test]
    fn nodesets_ascend_in_pre_and_post() {
        let t = PpcTree::build(&classic(), 1);
        for l in 0..t.n_frequent() as u32 {
            let ns = t.nodeset(l);
            for w in ns.windows(2) {
                assert!(w[0] < w[1]);
                assert!(t.node_post(w[0]) < t.node_post(w[1]));
            }
        }
    }

    #[test]
    fn intervals_partition_covered_transactions() {
        let t = PpcTree::build(&classic(), 1);
        // The root's interval spans every covered transaction.
        assert_eq!(t.node_interval(0), (0, t.covered_transactions()));
        // A child's interval nests inside its ancestors'.
        for a in 0..t.n_nodes() as u32 {
            for b in 0..t.n_nodes() as u32 {
                if t.is_ancestor(a, b) {
                    let (alo, ahi) = t.node_interval(a);
                    let (blo, bhi) = t.node_interval(b);
                    assert!(alo <= blo && bhi <= ahi, "{a} {b}");
                }
            }
        }
    }

    #[test]
    fn pair_supports_match_brute_force() {
        let ts = classic();
        for min_sup in 1..=4 {
            let t = PpcTree::build(&ts, min_sup);
            let m = t.n_frequent();
            let pairs = t.pair_supports();
            for a in 0..m as u32 {
                for b in 0..m as u32 {
                    let expected = if b < a {
                        let (ga, gb) = (t.global(a), t.global(b));
                        ts.transactions()
                            .iter()
                            .filter(|tx| {
                                tx.iter().any(|it| it.0 == ga) && tx.iter().any(|it| it.0 == gb)
                            })
                            .count() as u32
                    } else {
                        0 // only the (deeper rank, ancestor rank) half is filled
                    };
                    assert_eq!(
                        pairs[a as usize * m + b as usize],
                        expected,
                        "min_sup={min_sup} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn density_bounds() {
        let t = PpcTree::build(&classic(), 1);
        assert!(t.density() > 0.0 && t.density() <= 1.0);
        // All-identical transactions are maximally dense.
        let dense = PpcTree::build(&db(&[&[0, 1], &[0, 1], &[0, 1]]), 1);
        assert!((dense.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_infrequent_databases() {
        let t = PpcTree::build(&db(&[]), 1);
        assert_eq!(t.n_frequent(), 0);
        assert_eq!(t.covered_transactions(), 0);
        let t = PpcTree::build(&classic(), 100);
        assert_eq!(t.n_frequent(), 0);
    }
}
