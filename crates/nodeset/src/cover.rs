//! Closed-set filtering by transaction-interval covers.
//!
//! The CHARM-style closed miner in `dfp-mining` post-filters its
//! candidate stream: drop a pattern iff some candidate is a *strict
//! superset with equal support*. The seed implementation answered that
//! with pairwise subset checks inside support groups. This module
//! replaces the subset scans with an exact **tidset canonicalisation**
//! built on the PPC-tree:
//!
//! 1. compute `B(P)` — the covering nodes of `P` (nodes labeled with
//!    `P`'s least frequent item whose ancestors contain the rest) — by
//!    linear ancestor merges using the O(1) pre/post containment test;
//! 2. map each covering node to its transaction-id interval
//!    `[lo, lo + count)` and fuse adjacent intervals. Covering nodes
//!    have disjoint subtrees, so the intervals are disjoint and
//!    ascending: the fused list is a *canonical* representation of the
//!    pattern's exact tidset;
//! 3. group patterns by that key. Equal support + strict superset ⟺
//!    equal tidset (a superset's tidset is contained and equal-sized),
//!    so subsumption can only happen *inside* a group — and a group is a
//!    closure chain, typically one or two patterns. Within a group, keep
//!    the patterns no longer member strictly contains.
//!
//! The result is exactly the seed filter's output, but the quadratic
//! support-group scans are gone: the per-pattern cost is the ancestor
//! merges (linear in the nodesets touched) plus one hash insert.

use crate::tree::PpcTree;
use crate::Pattern;
use dfp_data::transactions::{contains_sorted, TransactionSet};
use std::collections::HashMap;

/// Filters `patterns` down to the candidates with no strict superset of
/// equal support among them, deduplicating identical itemsets first.
///
/// Returns `Err` with the deduplicated input when some pattern contains
/// an item below `min_sup` in `ts` — impossible for streams produced by
/// mining `ts` at `min_sup`, but callers fall back to a portable filter
/// rather than panic.
#[allow(clippy::result_large_err)]
pub fn closed_cover_filter(
    ts: &TransactionSet,
    min_sup: usize,
    patterns: Vec<Pattern>,
) -> Result<Vec<Pattern>, Vec<Pattern>> {
    // Dedup identical itemsets (a correct miner gives them equal support).
    let mut uniq: HashMap<Vec<dfp_data::transactions::Item>, u32> =
        HashMap::with_capacity(patterns.len());
    for p in patterns {
        uniq.entry(p.items).or_insert(p.support);
    }
    if uniq.is_empty() {
        return Ok(Vec::new());
    }

    let give_back = |uniq: HashMap<Vec<dfp_data::transactions::Item>, u32>| {
        uniq.into_iter()
            .map(|(items, support)| Pattern { items, support })
            .collect::<Vec<Pattern>>()
    };
    let tree = PpcTree::build(ts, min_sup);
    if uniq
        .keys()
        .any(|items| items.iter().any(|it| tree.local(it.0).is_none()))
    {
        return Err(give_back(uniq));
    }
    let mut groups: HashMap<Vec<(u32, u32)>, Vec<Pattern>> = HashMap::new();
    let mut locals = Vec::new();
    for (items, support) in uniq {
        locals.clear();
        for it in &items {
            locals.push(tree.local(it.0).expect("checked above"));
        }
        let key = cover_intervals(&tree, &locals);
        debug_assert_eq!(
            key.iter().map(|&(lo, hi)| hi - lo).sum::<u32>(),
            support,
            "cover does not reproduce the support of {items:?}"
        );
        groups
            .entry(key)
            .or_default()
            .push(Pattern { items, support });
    }

    let mut out = Vec::new();
    for group in groups.into_values() {
        // One tidset ⇒ one support; members form a chain under the subset
        // order whose top is the closure. Groups are tiny, so the
        // pairwise strict-superset check is cheap.
        for p in &group {
            let subsumed = group
                .iter()
                .any(|q| q.items.len() > p.items.len() && contains_sorted(&q.items, &p.items));
            if !subsumed {
                out.push(p.clone());
            }
        }
    }
    Ok(out)
}

/// The canonical tidset of the pattern given by `locals`: the fused,
/// ascending transaction-id intervals of its covering nodes.
fn cover_intervals(tree: &PpcTree, locals: &[u32]) -> Vec<(u32, u32)> {
    // Covering nodes: start from the least frequent (deepest-ranked)
    // item's nodeset and keep the nodes with an ancestor for every other
    // item of the pattern.
    let deepest = *locals.iter().max().expect("non-empty pattern");
    let mut cover: Vec<u32> = tree.nodeset(deepest).to_vec();
    for &l in locals {
        if l == deepest {
            continue;
        }
        cover = filter_by_ancestor(tree, &cover, tree.nodeset(l));
    }
    let mut intervals: Vec<(u32, u32)> = Vec::with_capacity(cover.len());
    for n in cover {
        let (lo, hi) = tree.node_interval(n);
        match intervals.last_mut() {
            Some(last) if last.1 == lo => last.1 = hi,
            _ => intervals.push((lo, hi)),
        }
    }
    intervals
}

/// Keeps the nodes of `cover` that have an ancestor in `na` — the same
/// two-pointer pre/post merge as the miner's level-2 seed (`cover` stays
/// ascending in pre and post: its nodes share a label, so their subtrees
/// are disjoint).
fn filter_by_ancestor(tree: &PpcTree, cover: &[u32], na: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(cover.len());
    let mut j = 0usize;
    for &n in cover {
        while j < na.len() && tree.node_post(na[j]) < tree.node_post(n) {
            j += 1;
        }
        if j < na.len() && tree.is_ancestor(na[j], n) {
            out.push(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;
    use dfp_data::transactions::Item;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn db(rows: &[&[u32]]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        TransactionSet::new(
            n_items,
            1,
            rows.iter()
                .map(|r| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            vec![ClassId(0); rows.len()],
        )
    }

    fn pat(items: &[u32], support: u32) -> Pattern {
        let mut items: Vec<Item> = items.iter().map(|&i| Item(i)).collect();
        items.sort_unstable();
        Pattern { items, support }
    }

    fn sorted(mut v: Vec<Pattern>) -> Vec<Pattern> {
        v.sort_by(|a, b| {
            a.items
                .len()
                .cmp(&b.items.len())
                .then_with(|| a.items.cmp(&b.items))
        });
        v
    }

    /// Reference semantics: drop p iff a strict superset of equal support
    /// exists among the (deduplicated) candidates.
    fn brute_filter(patterns: &[Pattern]) -> Vec<Pattern> {
        let uniq: Vec<&Pattern> = {
            let mut seen = BTreeSet::new();
            patterns
                .iter()
                .filter(|p| seen.insert(p.items.clone()))
                .collect()
        };
        uniq.iter()
            .filter(|p| {
                !uniq.iter().any(|q| {
                    q.support == p.support
                        && q.items.len() > p.items.len()
                        && contains_sorted(&q.items, &p.items)
                })
            })
            .map(|p| (*p).clone())
            .collect()
    }

    #[test]
    fn drops_subsumed_keeps_closed() {
        let ts = db(&[&[0, 1, 2], &[0, 1, 2], &[0, 1], &[2]]);
        let cands = vec![
            pat(&[0], 3),
            pat(&[0, 1], 3),
            pat(&[2], 3),
            pat(&[0, 1, 2], 2),
            pat(&[0, 2], 2),
            pat(&[0, 1], 3), // duplicate
        ];
        let got = sorted(closed_cover_filter(&ts, 1, cands.clone()).unwrap());
        let want = sorted(brute_filter(&cands));
        assert_eq!(got, want);
        assert!(got.iter().any(|p| p.items == vec![Item(0), Item(1)]));
        assert!(!got.iter().any(|p| p.items == vec![Item(0)]));
    }

    #[test]
    fn infrequent_item_falls_back() {
        let ts = db(&[&[0, 1], &[0]]);
        // Item 1 has support 1; at min_sup 2 it is outside the tree.
        let fallback = closed_cover_filter(&ts, 2, vec![pat(&[1], 1)]).unwrap_err();
        assert_eq!(fallback, vec![pat(&[1], 1)]);
    }

    #[test]
    fn empty_input() {
        let ts = db(&[&[0]]);
        assert_eq!(closed_cover_filter(&ts, 1, Vec::new()), Ok(Vec::new()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// On random databases, filtering the *entire frequent collection*
        /// reproduces the brute-force subsumption semantics exactly.
        #[test]
        fn matches_brute_force_on_mined_streams(
            txs in prop::collection::vec(
                prop::collection::btree_set(0u32..8, 0..=6), 1..=12),
            min_sup in 1usize..4,
        ) {
            let rows: Vec<Vec<u32>> = txs.into_iter()
                .map(|s| s.into_iter().collect()).collect();
            let refs: Vec<&[u32]> = rows.iter().map(|r| &r[..]).collect();
            let ts = db(&refs);
            let mined = crate::mine::mine_anytime(&ts, min_sup, &crate::Limits::default());
            prop_assume!(mined.complete);
            let got = sorted(
                closed_cover_filter(&ts, min_sup, mined.patterns.clone()).unwrap());
            let want = sorted(brute_filter(&mined.patterns));
            prop_assert_eq!(got, want);
        }
    }
}
