//! # dfp-nodeset — PPC-tree + (Diff)Nodeset frequent itemset mining
//!
//! The nodeset family (Deng's FIN / dFIN) is the fastest published
//! successor line to FP-growth on dense data. This crate builds a single
//! **PPC-tree** — an FP-tree-shaped prefix tree whose nodes carry
//! *pre-order* and *post-order* codes — over the itemized transaction
//! store and mines frequent itemsets by merging per-item node lists
//! instead of re-projecting conditional databases:
//!
//! * [`tree::PpcTree`] — the coded prefix tree. Ancestor containment is
//!   a two-comparison test (`anc.pre < desc.pre && anc.post > desc.post`),
//!   which also powers the O(1)-containment closed-set filter in
//!   [`cover`];
//! * [`mine`] — set-enumeration mining over **nodesets** (the node lists
//!   themselves, intersected by node identity) or **DiffNodesets** (the
//!   set differences between a pattern's nodeset and its parent's —
//!   much smaller on dense data). [`Mode::Auto`] picks per database
//!   from the projected item density;
//! * [`cover`] — maps a pattern's covering nodes to transaction-id
//!   intervals, giving a canonical tidset key and an exact closedness
//!   filter without pairwise subset scans.
//!
//! The crate sits *below* `dfp-mining` (which adapts it into the shared
//! `MinerKind` dispatch), so it defines its own small limit/stop/result
//! types mirroring the workspace anytime-mining contract: budget stops
//! are bit-identical across thread counts because parallel top-level
//! tasks emit their sequential streams, the streams are concatenated in
//! task order, and the budget truncates the concatenation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod mine;
pub mod tree;

pub use mine::{mine_anytime, mine_anytime_in, Mode};

use dfp_data::transactions::Item;

/// Search limits mirroring `dfp-mining`'s `MineOptions` (this crate sits
/// below `dfp-mining` in the dependency order, so it carries its own copy).
#[derive(Debug, Clone, Default)]
pub struct Limits {
    /// Minimum pattern length to *emit* (shorter prefixes are explored).
    /// `0` behaves as `1`.
    pub min_len: usize,
    /// Maximum pattern length to explore; `None` = unbounded.
    pub max_len: Option<usize>,
    /// Stop once this many patterns have been emitted; `None` = unbounded.
    pub max_patterns: Option<u64>,
    /// Stop searching at this instant; `None` = unbounded.
    pub deadline: Option<std::time::Instant>,
}

impl Limits {
    pub(crate) fn len_ok(&self, len: usize) -> bool {
        len >= self.min_len
    }

    pub(crate) fn may_extend(&self, len: usize) -> bool {
        self.max_len.is_none_or(|m| len < m)
    }
}

/// Why the search stopped before exhausting the pattern space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// [`Limits::max_patterns`] was reached.
    PatternBudget,
    /// [`Limits::deadline`] passed.
    Deadline,
    /// The `mining.nodeset` failpoint injected a failure.
    Fault,
}

/// One mined pattern: items ascending by global id, exact support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Items of the pattern, sorted ascending.
    pub items: Vec<Item>,
    /// Exact absolute support in the mined database.
    pub support: u32,
}

/// Best-so-far result of an anytime nodeset mine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodesetMined {
    /// Patterns found before the stop (everything, when `complete`).
    pub patterns: Vec<Pattern>,
    /// `true` when the search space was exhausted.
    pub complete: bool,
    /// Why mining stopped early; `None` when `complete`.
    pub stopped_by: Option<Stop>,
}

impl NodesetMined {
    pub(crate) fn complete(patterns: Vec<Pattern>) -> Self {
        NodesetMined {
            patterns,
            complete: true,
            stopped_by: None,
        }
    }

    pub(crate) fn stopped(patterns: Vec<Pattern>, reason: Stop) -> Self {
        NodesetMined {
            patterns,
            complete: false,
            stopped_by: Some(reason),
        }
    }
}
