//! Framework configuration: discretizer, feature mode, selection strategy,
//! model — plus constructors for the paper's five experimental variants.

use dfp_classify::svm::{Kernel, KernelSvmParams, LinearSvmParams};
use dfp_classify::tree::C45Params;
use dfp_measures::{MinSupStrategy, RelevanceMeasure};
use dfp_mining::per_class::MinerKind;
use dfp_mining::{MineOptions, MiningConfig};
use dfp_select::MmrfsConfig;

/// Which discretizer the pipeline fits on numeric attributes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DiscretizerKind {
    /// Supervised Fayyad–Irani MDL (default — what the discretized UCI
    /// datasets referenced by the paper use).
    #[default]
    Mdl,
    /// Unsupervised equal-width with the given bin count.
    EqualWidth(usize),
    /// Unsupervised equal-frequency with the given bin count.
    EqualFrequency(usize),
}

/// How pattern features are selected after mining.
#[derive(Debug, Clone)]
pub enum SelectionStrategy {
    /// MMRFS (the paper's Algorithm 1).
    Mmrfs(MmrfsConfig),
    /// Keep the `k` most relevant patterns (ablation baseline).
    TopK(usize, RelevanceMeasure),
    /// Keep every mined pattern (the `Pat_All` variant).
    None,
}

/// What the classifier's feature space contains.
#[derive(Debug, Clone)]
pub enum FeatureMode {
    /// Single items only (`Item_All` / `Item_RBF`).
    ItemsOnly,
    /// Single items *selected* by MMRFS over length-1 patterns (`Item_FS`).
    ItemsSelected(MmrfsConfig),
    /// Items plus frequent patterns (`Pat_All` / `Pat_FS`).
    Patterns {
        /// How `min_sup` is chosen (fixed or via the Eq. 8 strategy).
        min_sup: MinSupStrategy,
        /// Miner and pattern-shape options.
        mining: PatternMining,
        /// Post-mining selection.
        selection: SelectionStrategy,
    },
}

/// Mining knobs for pattern feature generation (relative support comes from
/// the [`MinSupStrategy`], so it is not duplicated here).
#[derive(Debug, Clone)]
pub struct PatternMining {
    /// Algorithm (closed mining by default, per the paper).
    pub miner: MinerKind,
    /// Length bounds / pattern budget.
    pub options: MineOptions,
    /// Per-class partition mining (paper default `true`).
    pub per_class: bool,
    /// Degrade gracefully: when `true`, a pattern budget or deadline stop
    /// keeps the best-so-far feature set (recorded in the fitted model's
    /// [`crate::pipeline::DegradationReport`]) instead of failing the fit.
    pub anytime: bool,
    /// Wall-clock budget for the mining step, resolved into an absolute
    /// deadline when mining starts. `None` = unbounded.
    pub time_budget: Option<std::time::Duration>,
}

impl Default for PatternMining {
    fn default() -> Self {
        PatternMining {
            // Closed mining per the paper, unless a valid `DFP_MINER`
            // environment override selects another backend.
            miner: MinerKind::env_default(),
            // A generous safety budget: mining aborts (instead of hanging)
            // if a pathologically low min_sup explodes the pattern count.
            options: MineOptions::default()
                .with_min_len(2)
                .with_max_patterns(2_000_000),
            per_class: true,
            anytime: false,
            time_budget: None,
        }
    }
}

impl PatternMining {
    /// Resolves into the `dfp-mining` configuration at a relative support.
    /// A `time_budget` becomes an absolute deadline at this point (i.e. the
    /// clock starts when the mining step starts).
    pub fn to_mining_config(&self, min_sup_rel: f64) -> MiningConfig {
        let mut options = self.options.clone();
        if let Some(budget) = self.time_budget {
            options = options.with_time_budget(budget);
        }
        MiningConfig {
            min_sup_rel,
            miner: self.miner,
            options,
            per_class: self.per_class,
        }
    }
}

/// Which model the pipeline trains on the transformed data.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    /// Linear SVM (dual coordinate descent).
    LinearSvm(LinearSvmParams),
    /// Kernel SVM (SMO); use [`Kernel::Rbf`] for the `Item_RBF` variant.
    KernelSvm(KernelSvmParams),
    /// C4.5 decision tree.
    C45(C45Params),
    /// Bernoulli naive Bayes.
    NaiveBayes,
    /// k-nearest neighbours.
    Knn(usize),
}

impl Default for ModelKind {
    fn default() -> Self {
        ModelKind::LinearSvm(LinearSvmParams::default())
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// Discretizer for numeric attributes.
    pub discretizer: DiscretizerKind,
    /// Feature space construction.
    pub features: FeatureMode,
    /// Model to train.
    pub model: ModelKind,
}

impl FrameworkConfig {
    /// `Item_All`: all single features, linear SVM.
    pub fn item_all() -> Self {
        FrameworkConfig {
            discretizer: DiscretizerKind::default(),
            features: FeatureMode::ItemsOnly,
            model: ModelKind::default(),
        }
    }

    /// `Item_FS`: MMRFS-selected single features, linear SVM.
    pub fn item_fs() -> Self {
        FrameworkConfig {
            discretizer: DiscretizerKind::default(),
            features: FeatureMode::ItemsSelected(MmrfsConfig::default()),
            model: ModelKind::default(),
        }
    }

    /// `Item_RBF`: all single features, RBF-kernel SVM.
    pub fn item_rbf(c: f64, gamma: f64) -> Self {
        FrameworkConfig {
            discretizer: DiscretizerKind::default(),
            features: FeatureMode::ItemsOnly,
            model: ModelKind::KernelSvm(KernelSvmParams {
                c,
                kernel: Kernel::Rbf { gamma },
                ..KernelSvmParams::default()
            }),
        }
    }

    /// `Pat_All`: items plus **all** mined frequent patterns, linear SVM.
    pub fn pat_all() -> Self {
        FrameworkConfig {
            discretizer: DiscretizerKind::default(),
            features: FeatureMode::Patterns {
                min_sup: MinSupStrategy::Relative(0.1),
                mining: PatternMining::default(),
                selection: SelectionStrategy::None,
            },
            model: ModelKind::default(),
        }
    }

    /// `Pat_FS`: items plus MMRFS-selected frequent patterns, linear SVM —
    /// the paper's headline configuration.
    pub fn pat_fs() -> Self {
        FrameworkConfig {
            discretizer: DiscretizerKind::default(),
            features: FeatureMode::Patterns {
                min_sup: MinSupStrategy::Relative(0.1),
                mining: PatternMining::default(),
                selection: SelectionStrategy::Mmrfs(MmrfsConfig::default()),
            },
            model: ModelKind::default(),
        }
    }

    /// Replaces the model.
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Replaces the model with a default-parameter C4.5 tree.
    pub fn with_c45(self) -> Self {
        self.with_model(ModelKind::C45(C45Params::default()))
    }

    /// Replaces the `min_sup` strategy (no-op for items-only modes).
    pub fn with_min_sup(mut self, strategy: MinSupStrategy) -> Self {
        if let FeatureMode::Patterns { min_sup, .. } = &mut self.features {
            *min_sup = strategy;
        }
        self
    }

    /// Replaces the discretizer.
    pub fn with_discretizer(mut self, d: DiscretizerKind) -> Self {
        self.discretizer = d;
        self
    }

    /// Replaces the mining backend (no-op for items-only modes). Overrides
    /// both the paper default and any `DFP_MINER` environment setting.
    pub fn with_miner(mut self, miner: MinerKind) -> Self {
        if let FeatureMode::Patterns { mining, .. } = &mut self.features {
            mining.miner = miner;
        }
        self
    }

    /// Enables or disables anytime (best-so-far) mining: with it on, a
    /// pattern-budget or deadline stop degrades the feature set instead of
    /// failing the fit (no-op for items-only modes).
    pub fn with_anytime_mining(mut self, on: bool) -> Self {
        if let FeatureMode::Patterns { mining, .. } = &mut self.features {
            mining.anytime = on;
        }
        self
    }

    /// Sets a wall-clock budget for the mining step (no-op for items-only
    /// modes). Combine with [`Self::with_anytime_mining`] to degrade instead
    /// of erroring when the budget expires.
    pub fn with_mining_time_budget(mut self, budget: std::time::Duration) -> Self {
        if let FeatureMode::Patterns { mining, .. } = &mut self.features {
            mining.time_budget = Some(budget);
        }
        self
    }

    /// Replaces the MMRFS coverage δ (no-op for non-MMRFS selection).
    pub fn with_coverage(mut self, delta: u32) -> Self {
        match &mut self.features {
            FeatureMode::ItemsSelected(cfg) => cfg.coverage = delta,
            FeatureMode::Patterns {
                selection: SelectionStrategy::Mmrfs(cfg),
                ..
            } => cfg.coverage = delta,
            _ => {}
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_shapes() {
        assert!(matches!(
            FrameworkConfig::item_all().features,
            FeatureMode::ItemsOnly
        ));
        assert!(matches!(
            FrameworkConfig::item_fs().features,
            FeatureMode::ItemsSelected(_)
        ));
        assert!(matches!(
            FrameworkConfig::item_rbf(1.0, 0.5).model,
            ModelKind::KernelSvm(KernelSvmParams {
                kernel: Kernel::Rbf { .. },
                ..
            })
        ));
        assert!(matches!(
            FrameworkConfig::pat_all().features,
            FeatureMode::Patterns {
                selection: SelectionStrategy::None,
                ..
            }
        ));
        assert!(matches!(
            FrameworkConfig::pat_fs().features,
            FeatureMode::Patterns {
                selection: SelectionStrategy::Mmrfs(_),
                ..
            }
        ));
    }

    #[test]
    fn builders_mutate() {
        let cfg = FrameworkConfig::pat_fs()
            .with_min_sup(MinSupStrategy::InfoGainThreshold(0.05))
            .with_coverage(7)
            .with_c45();
        match &cfg.features {
            FeatureMode::Patterns {
                min_sup, selection, ..
            } => {
                assert_eq!(*min_sup, MinSupStrategy::InfoGainThreshold(0.05));
                match selection {
                    SelectionStrategy::Mmrfs(m) => assert_eq!(m.coverage, 7),
                    _ => panic!("expected MMRFS"),
                }
            }
            _ => panic!("expected Patterns"),
        }
        assert!(matches!(cfg.model, ModelKind::C45(_)));
    }

    #[test]
    fn default_mining_budgeted() {
        let pm = PatternMining::default();
        assert!(pm.options.max_patterns.is_some());
        assert_eq!(pm.options.min_len, 2);
        let mc = pm.to_mining_config(0.25);
        assert_eq!(mc.min_sup_rel, 0.25);
        assert!(mc.per_class);
    }
}
