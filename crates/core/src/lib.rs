//! # dfp-core — the frequent pattern-based classification framework
//!
//! The paper's primary contribution (§3): a three-step pipeline
//!
//! 1. **feature generation** — mine closed frequent patterns per class
//!    partition at `min_sup` (set explicitly or derived from an
//!    information-gain threshold via the Eq. 8 strategy);
//! 2. **feature selection** — MMRFS (or an ablation selector) singles out
//!    discriminative, non-redundant patterns;
//! 3. **model learning** — transform `D` into `D'` over `I ∪ Fs` and train
//!    any classifier (SVM, C4.5, naive Bayes, k-NN).
//!
//! [`PatternClassifier`] runs the whole pipeline — including supervised
//! discretization fitted on the training fold only — and predicts on raw
//! datasets. [`FrameworkConfig`] has constructors for the paper's five
//! experimental variants (`Item_All`, `Item_FS`, `Item_RBF`, `Pat_All`,
//! `Pat_FS`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod pipeline;

pub use config::{DiscretizerKind, FeatureMode, FrameworkConfig, ModelKind, SelectionStrategy};
/// Re-export: the mining backend selector, so downstream crates (serving,
/// CLIs) can parse `--miner`/`DFP_MINER` without a direct mining dependency.
pub use dfp_mining::per_class::MinerKind;
pub use error::FrameworkError;
pub use pipeline::{
    cross_validate_framework, fit_with_model_selection, DegradationReport, FitInfo, FrameworkCv,
    PatternClassifier, TrainedModel,
};
