//! The end-to-end pipeline: discretize → itemize → mine → select →
//! transform → learn, plus the outer cross-validation harness used by the
//! experiment binaries.

use crate::config::{DiscretizerKind, FeatureMode, FrameworkConfig, ModelKind, SelectionStrategy};
use crate::error::FrameworkError;
use dfp_classify::knn::Knn;
use dfp_classify::naive_bayes::BernoulliNb;
use dfp_classify::svm::{KernelSvm, LinearSvm};
use dfp_classify::tree::C45;
use dfp_classify::Classifier;
use dfp_data::dataset::Dataset;
use dfp_data::discretize::{DiscretizationModel, EqualFrequency, EqualWidth, MdlDiscretizer};
use dfp_data::features::SparseBinaryMatrix;
use dfp_data::schema::{ClassId, Schema};
use dfp_data::split::stratified_k_fold;
use dfp_data::transactions::{ItemMap, TransactionSet};
use dfp_mining::count::attach_class_supports;
use dfp_mining::{mine_features, mine_features_anytime, MinedPattern, RawPattern, StopReason};
use dfp_select::baseline::top_k_by_relevance;
use dfp_select::{mmrfs, FeatureSpace};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Runs `f` under a named span and records its wall-clock duration in the
/// `dfp_pipeline_stage_seconds{stage=...}` histogram. Both names must be
/// `'static` so span records stay allocation-free and histogram series stay
/// bounded.
fn timed_stage<T>(span_name: &'static str, stage: &'static str, f: impl FnOnce() -> T) -> T {
    let _sp = dfp_obs::span(span_name);
    let start = Instant::now();
    let out = f();
    dfp_obs::metrics::dfp::pipeline_stage(stage).observe(start.elapsed());
    out
}

/// The `stage="predict"` histogram handle, cached because `predict_batch`
/// runs once per serving request — the registry lookup must not sit on that
/// path.
fn predict_stage_hist() -> &'static Arc<dfp_obs::Histogram> {
    static CELL: OnceLock<Arc<dfp_obs::Histogram>> = OnceLock::new();
    CELL.get_or_init(|| dfp_obs::metrics::dfp::pipeline_stage("predict"))
}

/// The trained model behind a [`PatternClassifier`] — one variant per
/// [`ModelKind`]. Public so model serialization can reach the fitted state.
#[derive(Debug, Clone)]
pub enum TrainedModel {
    /// Linear SVM (one-vs-rest).
    Linear(LinearSvm),
    /// Kernel SVM (one-vs-one SMO).
    Kernel(KernelSvm),
    /// C4.5 decision tree.
    Tree(C45),
    /// Bernoulli naive Bayes.
    Nb(BernoulliNb),
    /// k-nearest neighbours.
    Knn(Knn),
}

impl Classifier for TrainedModel {
    fn predict(&self, row: &[u32]) -> ClassId {
        match self {
            TrainedModel::Linear(m) => m.predict(row),
            TrainedModel::Kernel(m) => m.predict(row),
            TrainedModel::Tree(m) => m.predict(row),
            TrainedModel::Nb(m) => m.predict(row),
            TrainedModel::Knn(m) => m.predict(row),
        }
    }

    /// Rows are scored independently, so batch scoring (`dfpc-score`, the
    /// `/predict` endpoint, CV evaluation) shards them across workers.
    fn predict_batch(&self, rows: &[Vec<u32>]) -> Vec<ClassId> {
        let mut sp = dfp_obs::span("pipeline.predict_batch");
        sp.attr("rows", rows.len());
        let start = Instant::now();
        let out = dfp_par::par_chunks_map(rows, 256, |r| self.predict(r));
        predict_stage_hist().observe(start.elapsed());
        out
    }
}

/// Diagnostics from a pipeline fit — the numbers the paper's tables report.
#[derive(Debug, Clone, Default)]
pub struct FitInfo {
    /// Item universe size `|I|` after discretization.
    pub n_items: usize,
    /// Candidate patterns mined (`|F|`); 0 for items-only modes.
    pub n_patterns_mined: usize,
    /// Features selected (`|Fs|`, or selected items for `Item_FS`).
    pub n_selected: usize,
    /// Final feature-space width `d'`.
    pub n_features: usize,
    /// The absolute global `min_sup` the strategy resolved to, if patterns
    /// were mined.
    pub min_sup_abs: Option<usize>,
}

/// How much of the configured pipeline actually ran during a fit — the
/// degradation contract for anytime mining (see DESIGN.md §10). A default
/// report means nothing was degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationReport {
    /// `true` iff the mining step (if any) ran to completion.
    pub mining_complete: bool,
    /// Why mining stopped early, when `mining_complete == false`.
    pub mining_stopped_by: Option<StopReason>,
}

impl Default for DegradationReport {
    fn default() -> Self {
        DegradationReport {
            mining_complete: true,
            mining_stopped_by: None,
        }
    }
}

impl DegradationReport {
    /// `true` iff any pipeline step was degraded.
    pub fn is_degraded(&self) -> bool {
        !self.mining_complete
    }
}

/// A fitted frequent pattern-based classifier.
#[derive(Debug, Clone)]
pub struct PatternClassifier {
    model: TrainedModel,
    feature_space: FeatureSpace,
    discretization: Option<DiscretizationModel>,
    item_map: Option<ItemMap>,
    /// The raw training schema (before discretization), kept so a saved
    /// model can parse and predict new rows without the training data.
    schema: Option<Schema>,
    info: FitInfo,
    /// In-memory only — not persisted in model artifacts.
    degradation: DegradationReport,
    /// FNV-1a fingerprint of the itemized training transactions
    /// ([`dfp_mining::memo::fingerprint`]), recorded at fit time so a saved
    /// artifact can assert mining-cache compatibility on load.
    dataset_fingerprint: Option<u64>,
}

impl PatternClassifier {
    /// Runs the full pipeline on a (possibly numeric) dataset.
    pub fn fit(train: &Dataset, cfg: &FrameworkConfig) -> Result<Self, FrameworkError> {
        if train.is_empty() {
            return Err(FrameworkError::EmptyTrainingSet);
        }
        let mut sp = dfp_obs::span("pipeline.fit");
        sp.attr("rows", train.len());
        let (categorical, discretization) =
            timed_stage("pipeline.discretize", "discretize", || {
                if train.schema.has_numeric() {
                    let (d, m) = match cfg.discretizer {
                        DiscretizerKind::Mdl => train.discretize(&MdlDiscretizer::new()),
                        DiscretizerKind::EqualWidth(b) => train.discretize(&EqualWidth::new(b)),
                        DiscretizerKind::EqualFrequency(b) => {
                            train.discretize(&EqualFrequency::new(b))
                        }
                    };
                    (d, Some(m))
                } else {
                    (train.clone(), None)
                }
            });
        let (ts, map) = timed_stage("pipeline.itemize", "itemize", || {
            categorical.to_transactions()
        });
        let mut fitted = Self::fit_transactions(&ts, cfg)?;
        fitted.discretization = discretization;
        fitted.item_map = Some(map);
        fitted.schema = Some(train.schema.clone());
        Ok(fitted)
    }

    /// Runs the pipeline on already-itemized data (no discretization step).
    pub fn fit_transactions(
        ts: &TransactionSet,
        cfg: &FrameworkConfig,
    ) -> Result<Self, FrameworkError> {
        if ts.is_empty() {
            return Err(FrameworkError::EmptyTrainingSet);
        }
        let _sp = dfp_obs::span("pipeline.fit_transactions");
        let dataset_fingerprint = Some(dfp_mining::memo::fingerprint(ts));
        let mut info = FitInfo {
            n_items: ts.n_items(),
            ..FitInfo::default()
        };
        let mut degradation = DegradationReport::default();

        let feature_space = match &cfg.features {
            FeatureMode::ItemsOnly => FeatureSpace::items_only(ts.n_items(), ts.n_classes()),
            FeatureMode::ItemsSelected(mmrfs_cfg) => {
                timed_stage("pipeline.select", "select", || {
                    // Treat every single item as a length-1 pattern and run MMRFS.
                    let singletons: Vec<RawPattern> = (0..ts.n_items())
                        .map(|i| RawPattern {
                            items: vec![dfp_data::transactions::Item(i as u32)],
                            support: 0,
                        })
                        .collect();
                    let candidates = attach_class_supports(ts, &singletons);
                    let result = mmrfs(ts, &candidates, mmrfs_cfg);
                    let selected = result.patterns(&candidates);
                    info.n_patterns_mined = candidates.len();
                    info.n_selected = selected.len();
                    FeatureSpace::selected_only(ts.n_items(), ts.n_classes(), &selected)
                })
            }
            FeatureMode::Patterns {
                min_sup,
                mining,
                selection,
            } => {
                let priors = ts.class_priors();
                let abs = min_sup.resolve(ts.len(), &priors);
                info.min_sup_abs = Some(abs);
                let rel = abs as f64 / ts.len().max(1) as f64;
                let mining_cfg = mining.to_mining_config(rel);
                let candidates = {
                    let _sp = dfp_obs::span("pipeline.mine");
                    let start = Instant::now();
                    let candidates = if mining.anytime {
                        let feats = mine_features_anytime(ts, &mining_cfg)?;
                        degradation = DegradationReport {
                            mining_complete: feats.complete,
                            mining_stopped_by: feats.stopped_by,
                        };
                        feats.patterns
                    } else {
                        mine_features(ts, &mining_cfg)?
                    };
                    dfp_obs::metrics::dfp::pipeline_stage("mine").observe(start.elapsed());
                    candidates
                };
                info.n_patterns_mined = candidates.len();
                let selected: Vec<MinedPattern> =
                    timed_stage("pipeline.select", "select", || match selection {
                        SelectionStrategy::None => candidates,
                        SelectionStrategy::Mmrfs(mmrfs_cfg) => {
                            let result = mmrfs(ts, &candidates, mmrfs_cfg);
                            result.patterns(&candidates)
                        }
                        SelectionStrategy::TopK(k, measure) => {
                            top_k_by_relevance(ts, &candidates, *measure, *k)
                                .into_iter()
                                .map(|i| candidates[i].clone())
                                .collect()
                        }
                    });
                info.n_selected = selected.len();
                FeatureSpace::new(ts.n_items(), ts.n_classes(), &selected)
            }
        };
        info.n_features = feature_space.n_features();

        // Surface the degradation outcome: gauge reflects the most recent fit
        // in this process, and a WARN event names the stop reason.
        dfp_obs::metrics::dfp::pipeline_degraded().set(i64::from(degradation.is_degraded()));
        if let Some(reason) = degradation.mining_stopped_by {
            let reason = format!("{reason:?}");
            dfp_obs::log::warn(
                "dfp_core::pipeline",
                "anytime mining stopped early; model fitted on partial pattern set",
                &[
                    ("stopped_by", reason.as_str()),
                    ("patterns", &info.n_patterns_mined.to_string()),
                ],
            );
        }

        let matrix = timed_stage("pipeline.transform", "transform", || {
            feature_space.transform(ts)
        });
        let model = timed_stage("pipeline.train", "train", || match &cfg.model {
            ModelKind::LinearSvm(p) => TrainedModel::Linear(LinearSvm::fit(&matrix, p)),
            ModelKind::KernelSvm(p) => TrainedModel::Kernel(KernelSvm::fit(&matrix, p)),
            ModelKind::C45(p) => TrainedModel::Tree(C45::fit(&matrix, p)),
            ModelKind::NaiveBayes => TrainedModel::Nb(BernoulliNb::fit(&matrix)),
            ModelKind::Knn(k) => TrainedModel::Knn(Knn::fit(&matrix, *k)),
        });
        dfp_obs::metrics::dfp::pipeline_fits().inc();
        Ok(PatternClassifier {
            model,
            feature_space,
            discretization: None,
            item_map: None,
            schema: None,
            info,
            degradation,
            dataset_fingerprint,
        })
    }

    /// Reassembles a classifier from its parts (the inverse of what the
    /// serialization layer decomposes a saved model into).
    pub fn from_parts(
        model: TrainedModel,
        feature_space: FeatureSpace,
        discretization: Option<DiscretizationModel>,
        item_map: Option<ItemMap>,
        schema: Option<Schema>,
        info: FitInfo,
    ) -> Self {
        PatternClassifier {
            model,
            feature_space,
            discretization,
            item_map,
            schema,
            info,
            degradation: DegradationReport::default(),
            dataset_fingerprint: None,
        }
    }

    /// The trained model variant.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// What (if anything) was degraded while fitting this model. Models
    /// loaded from artifacts report the default (nothing degraded) — the
    /// report is a fit-time diagnostic and is not persisted.
    pub fn degradation(&self) -> &DegradationReport {
        &self.degradation
    }

    /// The fitted discretization, if the training data was numeric.
    pub fn discretization(&self) -> Option<&DiscretizationModel> {
        self.discretization.as_ref()
    }

    /// The `(attribute, value) ↔ item` map, if fitted from a raw dataset.
    pub fn item_map(&self) -> Option<&ItemMap> {
        self.item_map.as_ref()
    }

    /// The raw training schema, if fitted from a raw dataset. This is what a
    /// serving layer needs to parse incoming CSV rows into [`Dataset`]s
    /// compatible with [`Self::predict`].
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    /// Fit diagnostics.
    pub fn info(&self) -> &FitInfo {
        &self.info
    }

    /// The training-data fingerprint recorded at fit time (the mining
    /// cache's dataset key), if this model was fitted in-process or loaded
    /// from an artifact whose cache-key section matched the current
    /// fingerprint algorithm version.
    pub fn dataset_fingerprint(&self) -> Option<u64> {
        self.dataset_fingerprint
    }

    /// Sets the training-data fingerprint — used by the artifact codec when
    /// reassembling a model whose stored cache key passed the compatibility
    /// check.
    pub fn set_dataset_fingerprint(&mut self, fp: Option<u64>) {
        self.dataset_fingerprint = fp;
    }

    /// Feature importances for linear-SVM models: per feature, the largest
    /// absolute weight across the one-vs-rest sub-problems. `None` for
    /// non-linear models. Indices follow the fitted feature space
    /// (single items first, then pattern features).
    pub fn linear_feature_weights(&self) -> Option<Vec<f64>> {
        let TrainedModel::Linear(svm) = &self.model else {
            return None;
        };
        Some(
            (0..svm.n_features())
                .map(|f| {
                    (0..svm.n_classes())
                        .map(|c| svm.weight(c, f).abs())
                        .fold(0.0, f64::max)
                })
                .collect(),
        )
    }

    /// Human-readable descriptions of the pattern features in the fitted
    /// space, e.g. `"outlook=sunny ∧ wind=strong"`. Falls back to raw item
    /// ids when the model was fitted on pre-itemized transactions.
    pub fn describe_pattern_features(&self) -> Vec<String> {
        self.feature_space
            .patterns
            .iter()
            .map(|items| {
                items
                    .iter()
                    .map(|&it| match &self.item_map {
                        Some(map) => map.name(it).to_string(),
                        None => it.to_string(),
                    })
                    .collect::<Vec<_>>()
                    .join(" ∧ ")
            })
            .collect()
    }

    /// The fitted feature space.
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.feature_space
    }

    /// Transforms a raw dataset through the fitted discretization and
    /// feature space.
    pub fn transform(&self, data: &Dataset) -> Result<SparseBinaryMatrix, FrameworkError> {
        let categorical = match (&self.discretization, data.schema.has_numeric()) {
            (Some(model), _) => model.apply(data),
            (None, false) => data.clone(),
            (None, true) => {
                return Err(FrameworkError::SchemaMismatch(
                    "model fitted on categorical data but test data is numeric".into(),
                ))
            }
        };
        let (ts, _) = categorical.to_transactions();
        if ts.n_items() != self.feature_space.n_items {
            return Err(FrameworkError::SchemaMismatch(format!(
                "test data maps to {} items, model was fitted on {}",
                ts.n_items(),
                self.feature_space.n_items
            )));
        }
        Ok(self.feature_space.transform(&ts))
    }

    /// Predicts labels for a raw dataset.
    pub fn predict(&self, data: &Dataset) -> Result<Vec<ClassId>, FrameworkError> {
        Ok(self.model.predict_all(&self.transform(data)?))
    }

    /// Accuracy on a labelled raw dataset.
    ///
    /// # Panics
    /// Panics if the dataset is incompatible with the fitted schema
    /// (use [`Self::predict`] for a fallible version).
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let pred = self.predict(data).expect("dataset incompatible with model");
        dfp_classify::eval::accuracy(&pred, &data.labels)
    }

    /// Predicts labels for already-transformed feature rows (the output of
    /// [`Self::transform`]'s row encoding). This is the batch-scheduler
    /// entry point: the serving layer transforms each request's rows once,
    /// coalesces many requests, and scores them in a single call.
    pub fn predict_rows(&self, rows: &[Vec<u32>]) -> Vec<ClassId> {
        self.model.predict_batch(rows)
    }

    /// Predicts labels for already-itemized transactions.
    pub fn predict_transactions(&self, ts: &TransactionSet) -> Vec<ClassId> {
        self.model.predict_all(&self.feature_space.transform(ts))
    }

    /// Accuracy on already-itemized transactions.
    pub fn accuracy_transactions(&self, ts: &TransactionSet) -> f64 {
        let pred = self.predict_transactions(ts);
        dfp_classify::eval::accuracy(&pred, ts.labels())
    }
}

/// Outer cross-validation outcome for one framework configuration.
#[derive(Debug, Clone)]
pub struct FrameworkCv {
    /// Held-out accuracy per fold.
    pub fold_accuracies: Vec<f64>,
    /// Fit diagnostics per fold.
    pub infos: Vec<FitInfo>,
}

impl FrameworkCv {
    /// Mean held-out accuracy.
    pub fn mean(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Mean number of mined patterns across folds.
    pub fn mean_patterns(&self) -> f64 {
        if self.infos.is_empty() {
            return 0.0;
        }
        self.infos
            .iter()
            .map(|i| i.n_patterns_mined as f64)
            .sum::<f64>()
            / self.infos.len() as f64
    }

    /// Mean number of selected features across folds.
    pub fn mean_selected(&self) -> f64 {
        if self.infos.is_empty() {
            return 0.0;
        }
        self.infos.iter().map(|i| i.n_selected as f64).sum::<f64>() / self.infos.len() as f64
    }
}

/// The paper's model-selection protocol (§4): "We did 10-fold cross
/// validation on each training set and picked the best model for test."
/// Runs inner cross validation on `train` for every candidate
/// configuration, picks the best mean accuracy (ties to the earlier
/// config), and refits that configuration on the full training set.
///
/// Returns the fitted model and the index of the winning configuration.
///
/// # Panics
/// Panics if `configs` is empty.
pub fn fit_with_model_selection(
    train: &Dataset,
    configs: &[FrameworkConfig],
    inner_folds: usize,
    seed: u64,
) -> Result<(PatternClassifier, usize), FrameworkError> {
    assert!(!configs.is_empty(), "need at least one configuration");
    let mut best = 0usize;
    let mut best_acc = f64::NEG_INFINITY;
    for (i, cfg) in configs.iter().enumerate() {
        let cv = cross_validate_framework(train, cfg, inner_folds, seed)?;
        if cv.mean() > best_acc {
            best_acc = cv.mean();
            best = i;
        }
    }
    Ok((PatternClassifier::fit(train, &configs[best])?, best))
}

/// Stratified k-fold cross validation of the **whole pipeline** on a raw
/// dataset — discretization, mining and selection are re-fitted inside every
/// fold, so no information leaks from test to train (the paper's §4
/// protocol).
pub fn cross_validate_framework(
    data: &Dataset,
    cfg: &FrameworkConfig,
    k: usize,
    seed: u64,
) -> Result<FrameworkCv, FrameworkError> {
    let mut sp = dfp_obs::span("cv.run");
    sp.attr("folds", k);
    let folds = stratified_k_fold(&data.labels, k, seed);
    // Every fold re-fits the whole pipeline from the fixed split, so folds
    // run on separate workers; results merge in fold order and the first
    // failing fold (in that order) decides the error, as sequentially.
    let per_fold: Vec<Result<(f64, FitInfo), FrameworkError>> = dfp_par::par_map(&folds, |fold| {
        dfp_fault::faultpoint!("cv.fold", FrameworkError::Injected("cv.fold"));
        let mut sp = dfp_obs::span("cv.fold");
        sp.attr("train", fold.train.len());
        sp.attr("test", fold.test.len());
        dfp_obs::metrics::dfp::cv_folds().inc();
        let train = data.subset(&fold.train);
        let test = data.subset(&fold.test);
        let model = PatternClassifier::fit(&train, cfg)?;
        Ok((model.accuracy(&test), model.info().clone()))
    });
    let mut fold_accuracies = Vec::with_capacity(k);
    let mut infos = Vec::with_capacity(k);
    for r in per_fold {
        let (acc, info) = r?;
        fold_accuracies.push(acc);
        infos.push(info);
    }
    Ok(FrameworkCv {
        fold_accuracies,
        infos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::dataset::categorical_dataset;
    use dfp_data::synth::profile_by_name;
    use dfp_measures::MinSupStrategy;

    /// A planted two-class categorical dataset where the pair (a0=1, a1=1)
    /// marks class 0 and (a0=1, a1=2) marks class 1 — single features are
    /// weak, the combination is decisive.
    fn confusable() -> Dataset {
        let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
        for i in 0..60u32 {
            let (vals, label) = if i % 2 == 0 {
                (vec![1, 1, i % 3], 0)
            } else {
                (vec![1, 2, i % 3], 1)
            };
            rows.push((vals, label));
        }
        let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
        categorical_dataset(&[3, 3, 3], 2, &borrowed)
    }

    #[test]
    fn pat_fs_beats_items_on_confusable_data() {
        let data = confusable();
        let item = cross_validate_framework(&data, &FrameworkConfig::item_all(), 5, 1).unwrap();
        let pat = cross_validate_framework(&data, &FrameworkConfig::pat_fs(), 5, 1).unwrap();
        assert!(
            pat.mean() >= item.mean(),
            "Pat_FS {} < Item_All {}",
            pat.mean(),
            item.mean()
        );
        assert!(pat.mean() > 0.9, "Pat_FS mean {}", pat.mean());
    }

    #[test]
    fn fit_info_populated() {
        let data = confusable();
        let m = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
        let info = m.info();
        assert_eq!(info.n_items, 9);
        assert!(info.n_patterns_mined > 0);
        assert!(info.n_selected > 0);
        assert!(info.n_features >= info.n_items);
        assert!(info.min_sup_abs.is_some());
    }

    #[test]
    fn item_fs_selects_a_subset() {
        let data = confusable();
        let m = PatternClassifier::fit(&data, &FrameworkConfig::item_fs()).unwrap();
        assert!(m.info().n_selected <= m.info().n_items);
        assert!(m.info().n_features == m.info().n_selected);
    }

    #[test]
    fn min_sup_strategy_threads_through() {
        let data = confusable();
        let cfg = FrameworkConfig::pat_fs().with_min_sup(MinSupStrategy::Absolute(20));
        let m = PatternClassifier::fit(&data, &cfg).unwrap();
        assert_eq!(m.info().min_sup_abs, Some(20));
    }

    #[test]
    fn numeric_pipeline_with_mdl() {
        // iris profile is fully numeric → exercises discretization end to end.
        let data = profile_by_name("iris").unwrap().generate();
        let m = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
        let acc = m.accuracy(&data);
        assert!(acc > 0.6, "train accuracy {acc}");
    }

    #[test]
    fn discretization_replayed_on_test() {
        let data = profile_by_name("iris").unwrap().generate();
        let fold = dfp_data::split::stratified_holdout(&data.labels, 0.3, 3);
        let train = data.subset(&fold.train);
        let test = data.subset(&fold.test);
        let m = PatternClassifier::fit(&train, &FrameworkConfig::pat_fs()).unwrap();
        let acc = m.accuracy(&test);
        assert!(acc > 0.5, "test accuracy {acc}");
    }

    #[test]
    fn all_models_run() {
        use dfp_classify::tree::C45Params;
        let data = confusable();
        for model in [
            ModelKind::default(),
            ModelKind::C45(C45Params::default()),
            ModelKind::NaiveBayes,
            ModelKind::Knn(3),
            ModelKind::KernelSvm(dfp_classify::svm::KernelSvmParams::rbf(1.0, 0.5)),
        ] {
            let cfg = FrameworkConfig::pat_fs().with_model(model.clone());
            let m = PatternClassifier::fit(&data, &cfg).unwrap();
            assert!(
                m.accuracy(&data) > 0.8,
                "{model:?} accuracy {}",
                m.accuracy(&data)
            );
        }
    }

    #[test]
    fn model_selection_picks_working_config() {
        use dfp_classify::svm::LinearSvmParams;
        let data = confusable();
        // A crippled tree (depth 0 → majority stump) vs a real SVM.
        let stump =
            FrameworkConfig::item_all().with_model(ModelKind::C45(dfp_classify::tree::C45Params {
                max_depth: Some(0),
                ..dfp_classify::tree::C45Params::default()
            }));
        let svm =
            FrameworkConfig::pat_fs().with_model(ModelKind::LinearSvm(LinearSvmParams::default()));
        let (model, winner) = fit_with_model_selection(&data, &[stump, svm], 3, 5).unwrap();
        assert_eq!(winner, 1);
        assert!(model.accuracy(&data) > 0.9);
    }

    #[test]
    fn model_selection_tie_prefers_first() {
        let data = confusable();
        let a = FrameworkConfig::pat_fs();
        let b = FrameworkConfig::pat_fs();
        let (_, winner) = fit_with_model_selection(&data, &[a, b], 3, 5).unwrap();
        assert_eq!(winner, 0);
    }

    #[test]
    fn linear_weights_reflect_informative_features() {
        let data = confusable();
        let m = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
        let w = m.linear_feature_weights().expect("linear model");
        assert_eq!(w.len(), m.info().n_features);
        assert!(w.iter().all(|x| x.is_finite() && *x >= 0.0));
        // some pattern feature must carry non-trivial weight on this data
        let max_pattern_w = w[m.info().n_items..].iter().cloned().fold(0.0, f64::max);
        assert!(max_pattern_w > 0.0, "pattern features all zero-weighted");
        // non-linear models return None
        let tree = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs().with_c45()).unwrap();
        assert!(tree.linear_feature_weights().is_none());
    }

    #[test]
    fn pattern_features_are_describable() {
        let data = confusable();
        let m = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
        let desc = m.describe_pattern_features();
        assert_eq!(desc.len(), m.feature_space().patterns.len());
        assert!(!desc.is_empty());
        // attribute names from `categorical_dataset` look like "a0=v1"
        assert!(desc[0].contains('='), "{:?}", desc[0]);
        assert!(desc.iter().any(|d| d.contains(" ∧ ")), "{desc:?}");
    }

    #[test]
    fn empty_training_set_rejected() {
        let data = categorical_dataset(&[2], 1, &[]);
        assert_eq!(
            PatternClassifier::fit(&data, &FrameworkConfig::item_all()).unwrap_err(),
            FrameworkError::EmptyTrainingSet
        );
    }

    #[test]
    fn numeric_test_against_categorical_model_rejected() {
        let data = confusable();
        let m = PatternClassifier::fit(&data, &FrameworkConfig::item_all()).unwrap();
        let numeric = profile_by_name("iris").unwrap().generate();
        assert!(matches!(
            m.predict(&numeric).unwrap_err(),
            FrameworkError::SchemaMismatch(_)
        ));
    }
}
