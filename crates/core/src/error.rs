//! Framework error type.

use dfp_mining::MiningError;

/// Errors surfaced by the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameworkError {
    /// The training dataset has no rows.
    EmptyTrainingSet,
    /// Pattern mining failed (budget exceeded or invalid support).
    Mining(MiningError),
    /// Test data is not compatible with the fitted feature space.
    SchemaMismatch(String),
    /// A `dfp-fault` failpoint injected a failure at the named site.
    Injected(&'static str),
}

impl std::fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameworkError::EmptyTrainingSet => write!(f, "training dataset is empty"),
            FrameworkError::Mining(e) => write!(f, "pattern mining failed: {e}"),
            FrameworkError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            FrameworkError::Injected(site) => {
                write!(f, "fault injected at failpoint '{site}'")
            }
        }
    }
}

impl std::error::Error for FrameworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameworkError::Mining(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MiningError> for FrameworkError {
    fn from(e: MiningError) -> Self {
        FrameworkError::Mining(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: FrameworkError = MiningError::ZeroMinSup.into();
        assert!(e.to_string().contains("mining failed"));
        assert!(FrameworkError::EmptyTrainingSet
            .to_string()
            .contains("empty"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
