//! Baseline selectors for the selection-ablation experiments: top-k by
//! relevance (no redundancy term) and seeded random selection.

use dfp_data::transactions::TransactionSet;
use dfp_measures::RelevanceMeasure;
use dfp_mining::MinedPattern;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Selects the `k` most relevant patterns, ignoring redundancy.
/// Returns indices into `candidates`, most relevant first.
pub fn top_k_by_relevance(
    ts: &TransactionSet,
    candidates: &[MinedPattern],
    measure: RelevanceMeasure,
    k: usize,
) -> Vec<usize> {
    let class_counts = ts.class_counts();
    let relevance = measure.score_all(candidates, &class_counts);
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    idx.sort_by(|&a, &b| {
        relevance[b]
            .partial_cmp(&relevance[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Selects `k` patterns uniformly at random (deterministic per seed).
pub fn random_k(candidates: &[MinedPattern], k: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;
    use dfp_data::transactions::Item;

    fn pattern(items: &[u32], class_supports: &[u32]) -> MinedPattern {
        MinedPattern {
            items: items.iter().map(|&i| Item(i)).collect(),
            support: class_supports.iter().sum(),
            class_supports: class_supports.to_vec(),
        }
    }

    fn ts() -> TransactionSet {
        TransactionSet::new(
            3,
            2,
            vec![vec![Item(0)], vec![Item(0)], vec![Item(1)], vec![Item(2)]],
            vec![ClassId(0), ClassId(0), ClassId(1), ClassId(1)],
        )
    }

    #[test]
    fn top_k_ranks_by_gain() {
        let cands = vec![
            pattern(&[2], &[1, 1]), // useless
            pattern(&[0], &[2, 0]), // strong class-0 marker
            pattern(&[1], &[0, 1]), // weaker marker
        ];
        let got = top_k_by_relevance(&ts(), &cands, RelevanceMeasure::InfoGain, 2);
        assert_eq!(got[0], 1);
        assert_eq!(got.len(), 2);
        assert!(!got.contains(&0));
    }

    #[test]
    fn top_k_larger_than_pool() {
        let cands = vec![pattern(&[0], &[2, 0])];
        let got = top_k_by_relevance(&ts(), &cands, RelevanceMeasure::InfoGain, 10);
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn random_k_deterministic_and_bounded() {
        let cands: Vec<MinedPattern> = (0..10).map(|i| pattern(&[i % 3], &[1, 1])).collect();
        let a = random_k(&cands, 4, 7);
        let b = random_k(&cands, 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&i| i < 10));
        let c = random_k(&cands, 4, 8);
        assert_ne!(a, c);
    }
}
