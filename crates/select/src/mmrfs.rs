//! MMRFS — Maximal Marginal Relevance Feature Selection (paper Algorithm 1).
//!
//! A pattern is selected when it is relevant to the class label *and* has
//! low redundancy to the patterns already selected:
//!
//! ```text
//! 1:  let α be the most relevant pattern; Fs = {α}
//! 2:  loop:
//! 3:    β = argmax_{F − Fs} g(β),  g(β) = S(β) − max_{γ ∈ Fs} R(β, γ)
//! 4:    if β correctly covers at least one instance: Fs ∪= {β}
//! 5:    F −= {β}
//! 6:    until every instance is covered δ times or F = ∅
//! ```
//!
//! "Correctly covers" follows the database-coverage tradition of CMAR: the
//! instance contains the pattern and the pattern's majority class equals the
//! instance's label. The per-candidate `max_{γ ∈ Fs} R(β, γ)` is maintained
//! incrementally — one update pass over the remaining candidates per
//! selection — so a full run costs `O(|Fs| · |F|)` tidset intersections.

use dfp_data::rowset::RowSet;
use dfp_data::transactions::TransactionSet;
use dfp_measures::redundancy::redundancy_from_overlap;
use dfp_measures::RelevanceMeasure;
use dfp_mining::count::pattern_rowset;
use dfp_mining::MinedPattern;

/// MMRFS configuration.
#[derive(Debug, Clone)]
pub struct MmrfsConfig {
    /// Database coverage threshold δ: selection stops once every training
    /// instance is correctly covered δ times (or candidates run out).
    pub coverage: u32,
    /// Relevance measure `S` (information gain or Fisher score).
    pub relevance: RelevanceMeasure,
    /// Hard cap on the number of selected features (`None` = coverage-only).
    pub max_features: Option<usize>,
    /// Keep only the `max_candidates` most relevant patterns before the
    /// selection loop (`None` = all). A tractability valve for very low
    /// `min_sup` runs; the paper's experiments do not need it.
    pub max_candidates: Option<usize>,
}

impl Default for MmrfsConfig {
    fn default() -> Self {
        MmrfsConfig {
            coverage: 3,
            relevance: RelevanceMeasure::InfoGain,
            max_features: None,
            max_candidates: None,
        }
    }
}

/// Outcome of a selection run.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Indices into the input pattern slice, in selection order.
    pub selected: Vec<usize>,
    /// Relevance `S(α)` of every input pattern (by input index).
    pub relevance: Vec<f64>,
    /// How many instances ended fully covered (δ times).
    pub fully_covered: usize,
}

impl SelectionResult {
    /// Materialises the selected patterns.
    pub fn patterns(&self, candidates: &[MinedPattern]) -> Vec<MinedPattern> {
        self.selected
            .iter()
            .map(|&i| candidates[i].clone())
            .collect()
    }
}

/// Runs MMRFS over candidate patterns mined from `ts`.
///
/// The result's `selected` indices refer to `candidates`. Candidates with
/// zero support never get selected (they cover nothing).
pub fn mmrfs(
    ts: &TransactionSet,
    candidates: &[MinedPattern],
    cfg: &MmrfsConfig,
) -> SelectionResult {
    let mut sp = dfp_obs::span("select.mmrfs");
    let n = ts.len();
    let class_counts = ts.class_counts();
    let relevance = cfg.relevance.score_all(candidates, &class_counts);

    // Candidate pool, optionally pruned to the most relevant K.
    let mut pool: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].support > 0)
        .collect();
    if let Some(k) = cfg.max_candidates {
        if pool.len() > k {
            pool.sort_by(|&a, &b| {
                relevance[b]
                    .partial_cmp(&relevance[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.cmp(&b))
            });
            pool.truncate(k);
        }
    }

    // Tidsets and correct-cover tidsets (dense or compressed row sets,
    // following the active `DFP_BITSET` mode).
    let vertical = ts.vertical_rowsets();
    let class_masks = ts.class_masks();
    let tids: Vec<RowSet> = dfp_par::par_chunks_map(&pool, 64, |&i| {
        pattern_rowset(&vertical, n, &candidates[i].items)
    });
    let pool_slots: Vec<usize> = (0..pool.len()).collect();
    let correct: Vec<RowSet> = dfp_par::par_chunks_map(&pool_slots, 64, |&j| {
        tids[j].and(&class_masks[candidates[pool[j]].majority_class().index()])
    });

    let mut max_red = vec![0.0f64; pool.len()]; // max_{γ∈Fs} R(·, γ) so far
    let mut alive = vec![true; pool.len()];
    let mut coverage = vec![0u32; n];
    let mut uncovered = n; // instances with coverage < δ
    let mut selected = Vec::new();

    // A challenger replaces the incumbent iff strictly greater under the
    // total order (gain; support; Reverse(candidate index)) — the same rule
    // the sequential scan applies, so chunked fold + in-order reduce picks
    // the identical maximum (distinct indices make the order total, and a
    // NaN/−∞ gain never wins any comparison, hence is never admitted).
    let challenge = |best: Option<(usize, f64)>, j: usize, gain: f64| -> Option<(usize, f64)> {
        let wins = match best {
            None => gain > f64::NEG_INFINITY,
            Some((b, best_gain)) => {
                gain > best_gain
                    || (gain == best_gain
                        && (candidates[pool[j]].support, std::cmp::Reverse(pool[j]))
                            > (candidates[pool[b]].support, std::cmp::Reverse(pool[b])))
            }
        };
        if wins {
            Some((j, gain))
        } else {
            best
        }
    };

    // Selection-loop tallies, flushed to the global counters once at the end
    // (plain u64 bumps keep the loop free of atomic traffic).
    let mut argmax_rounds = 0u64;
    let mut cand_scanned = 0u64;
    let mut red_updates = 0u64;

    while uncovered > 0 && selected.len() < cfg.max_features.unwrap_or(usize::MAX) {
        argmax_rounds += 1;
        cand_scanned += pool.len() as u64;
        // argmax gain over the remaining pool (deterministic tie-break),
        // chunked across workers.
        let best = dfp_par::par_map_reduce(
            &pool,
            256,
            || None,
            |acc: Option<(usize, f64)>, j, &cand| {
                if !alive[j] {
                    return acc;
                }
                challenge(acc, j, relevance[cand] - max_red[j])
            },
            |left, right| match right {
                Some((j, gain)) => challenge(left, j, gain),
                None => left,
            },
        );
        let Some((j, _)) = best else { break }; // F = ∅
        alive[j] = false;

        // Does β correctly cover at least one not-yet-saturated instance?
        let covers_new = correct[j].iter_ones().any(|t| coverage[t] < cfg.coverage);
        if !covers_new {
            continue; // discarded from F without selection (Algorithm 1, line 7)
        }

        // Select β: update coverage and the incremental redundancy caches.
        for t in correct[j].iter_ones() {
            coverage[t] += 1;
            if coverage[t] == cfg.coverage {
                uncovered -= 1;
            }
        }
        // Redundancy-cache update: each slot only reads shared state and
        // writes its own cell, so sharding `max_red` across workers leaves
        // every cell's value — and thus later rounds — unchanged.
        red_updates += alive.iter().filter(|&&a| a).count() as u64;
        let sel_rel = relevance[pool[j]];
        let sel_tids = &tids[j];
        dfp_par::par_chunks_mut(&mut max_red, 256, |offset, cells| {
            for (d, cell) in cells.iter_mut().enumerate() {
                let k = offset + d;
                if !alive[k] {
                    continue;
                }
                let jac = sel_tids.jaccard(&tids[k]);
                let r = redundancy_from_overlap(jac, relevance[pool[k]], sel_rel);
                if r > *cell {
                    *cell = r;
                }
            }
        });
        selected.push(pool[j]);
    }

    dfp_obs::metrics::dfp::select_argmax_rounds().add(argmax_rounds);
    dfp_obs::metrics::dfp::select_candidates_scanned().add(cand_scanned);
    dfp_obs::metrics::dfp::select_redundancy_updates().add(red_updates);
    sp.attr("candidates", pool.len());
    sp.attr("selected", selected.len());
    sp.attr("rounds", argmax_rounds);

    let fully_covered = coverage.iter().filter(|&&c| c >= cfg.coverage).count();
    SelectionResult {
        selected,
        relevance,
        fully_covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;
    use dfp_data::transactions::Item;
    use dfp_mining::{mine_features, MiningConfig};

    fn db(rows: &[(&[u32], u32)]) -> TransactionSet {
        let n_items = rows
            .iter()
            .flat_map(|(r, _)| r.iter())
            .map(|&i| i as usize + 1)
            .max()
            .unwrap_or(0);
        let n_classes = rows.iter().map(|&(_, l)| l as usize + 1).max().unwrap_or(1);
        TransactionSet::new(
            n_items,
            n_classes,
            rows.iter()
                .map(|(r, _)| {
                    let mut v: Vec<Item> = r.iter().map(|&i| Item(i)).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            rows.iter().map(|&(_, l)| ClassId(l)).collect(),
        )
    }

    /// Item 0 marks class 0, item 1 marks class 1, item 2 is noise.
    fn marker_db() -> TransactionSet {
        db(&[
            (&[0, 2], 0),
            (&[0], 0),
            (&[0, 2], 0),
            (&[1], 1),
            (&[1, 2], 1),
            (&[1], 1),
        ])
    }

    fn mined(ts: &TransactionSet) -> Vec<MinedPattern> {
        mine_features(ts, &MiningConfig::with_min_sup(0.3)).unwrap()
    }

    #[test]
    fn first_pick_is_most_relevant() {
        let ts = marker_db();
        let cands = mined(&ts);
        let res = mmrfs(&ts, &cands, &MmrfsConfig::default());
        assert!(!res.selected.is_empty());
        let first = res.selected[0];
        let max_rel = res
            .relevance
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((res.relevance[first] - max_rel).abs() < 1e-12);
    }

    #[test]
    fn coverage_postcondition() {
        let ts = marker_db();
        let cands = mined(&ts);
        let cfg = MmrfsConfig {
            coverage: 1,
            ..MmrfsConfig::default()
        };
        let res = mmrfs(&ts, &cands, &cfg);
        // markers exist for every instance, so δ=1 must fully cover
        assert_eq!(res.fully_covered, ts.len());
    }

    #[test]
    fn higher_delta_selects_no_fewer_features() {
        let ts = marker_db();
        let cands = mined(&ts);
        let mut last = 0;
        for delta in [1u32, 2, 3] {
            let cfg = MmrfsConfig {
                coverage: delta,
                ..MmrfsConfig::default()
            };
            let got = mmrfs(&ts, &cands, &cfg).selected.len();
            assert!(got >= last, "δ={delta}: {got} < {last}");
            last = got;
        }
    }

    #[test]
    fn redundant_duplicate_pattern_deprioritised() {
        // Two identical-tidset patterns: {0} and {0,3} where 3 co-occurs
        // exactly with 0. MMRFS must not pick both before an informative
        // non-redundant pattern ({1}).
        let ts = db(&[
            (&[0, 3], 0),
            (&[0, 3], 0),
            (&[0, 3], 0),
            (&[1], 1),
            (&[1], 1),
            (&[1], 1),
        ]);
        let cands = mined(&ts);
        let cfg = MmrfsConfig {
            coverage: 2,
            ..MmrfsConfig::default()
        };
        let res = mmrfs(&ts, &cands, &cfg);
        let sel = res.patterns(&cands);
        // the first two selections must serve *different* classes — picking
        // two tidset-identical class-0 patterns back to back would mean the
        // redundancy term is inert
        assert!(sel.len() >= 2);
        assert_ne!(sel[0].majority_class(), sel[1].majority_class(), "{sel:?}");
    }

    #[test]
    fn max_features_cap() {
        let ts = marker_db();
        let cands = mined(&ts);
        let cfg = MmrfsConfig {
            max_features: Some(1),
            ..MmrfsConfig::default()
        };
        assert_eq!(mmrfs(&ts, &cands, &cfg).selected.len(), 1);
    }

    #[test]
    fn max_candidates_prunes_pool() {
        let ts = marker_db();
        let cands = mined(&ts);
        let cfg = MmrfsConfig {
            max_candidates: Some(2),
            ..MmrfsConfig::default()
        };
        let res = mmrfs(&ts, &cands, &cfg);
        assert!(res.selected.len() <= 2);
    }

    #[test]
    fn empty_candidates() {
        let ts = marker_db();
        let res = mmrfs(&ts, &[], &MmrfsConfig::default());
        assert!(res.selected.is_empty());
        assert_eq!(res.fully_covered, 0);
    }

    #[test]
    fn deterministic() {
        let ts = marker_db();
        let cands = mined(&ts);
        let a = mmrfs(&ts, &cands, &MmrfsConfig::default());
        let b = mmrfs(&ts, &cands, &MmrfsConfig::default());
        assert_eq!(a.selected, b.selected);
    }
}
