//! # dfp-select — discriminative feature selection over frequent patterns
//!
//! Step 2 of the framework (paper §3.3): "not every frequent pattern is
//! equally useful … it is necessary to perform feature selection to single
//! out a subset of discriminative features and remove non-discriminative
//! ones."
//!
//! * [`mod@mmrfs`] — the paper's **MMRFS** algorithm (Algorithm 1): maximal
//!   marginal relevance selection with the Jaccard-weighted redundancy
//!   (Eq. 9), gain `g(α) = S(α) − max_{β ∈ Fs} R(α, β)` (Eq. 10), and the
//!   database-coverage stopping rule (each training instance correctly
//!   covered δ times);
//! * [`baseline`] — top-k-by-relevance and seeded random selection, used by
//!   the selection-ablation benchmarks;
//! * [`transform`] — maps the dataset into the extended binary feature space
//!   `I ∪ Fs` (paper §2), producing the sparse matrices the classifiers
//!   consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod mmrfs;
pub mod transform;

pub use mmrfs::{mmrfs, MmrfsConfig, SelectionResult};
pub use transform::FeatureSpace;
