//! The feature-space transform `D → D'` (paper §2): the dataset is mapped
//! into `B^{d'}` over features `I ∪ Fs` — every single item plus every
//! selected pattern. A pattern feature fires on a transaction that contains
//! all of the pattern's items.
//!
//! Two layouts exist:
//! * **items + patterns** ([`FeatureSpace::new`]) — the paper's `Pat_All` /
//!   `Pat_FS` space `I ∪ Fs`: all single items plus selected patterns of
//!   length ≥ 2 (length-1 patterns are dropped as duplicates of items);
//! * **selected features only** ([`FeatureSpace::selected_only`]) — the
//!   `Item_FS`-style space where only an explicitly chosen feature list
//!   (any length, including single items) is kept.

use dfp_data::features::SparseBinaryMatrix;
use dfp_data::transactions::{contains_sorted, Item, TransactionSet};
use dfp_mining::MinedPattern;

/// A fitted feature space over an item universe plus pattern features.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    /// Size of the item universe `|I|`.
    pub n_items: usize,
    /// If `true`, every single item is a feature (ids `0..n_items`) and
    /// pattern features follow; if `false`, only `patterns` are features.
    pub include_all_items: bool,
    /// Pattern features, each sorted ascending. With `include_all_items`
    /// their ids start at `n_items`, otherwise at `0`.
    pub patterns: Vec<Vec<Item>>,
    /// Number of classes (propagated into transformed matrices).
    pub n_classes: usize,
}

impl FeatureSpace {
    /// The `I ∪ Fs` space: all items plus the selected patterns.
    /// Deduplicates patterns and drops those of length < 2 (already items).
    pub fn new(n_items: usize, n_classes: usize, selected: &[MinedPattern]) -> Self {
        let mut seen = std::collections::HashSet::new();
        let patterns: Vec<Vec<Item>> = selected
            .iter()
            .filter(|p| p.items.len() >= 2)
            .filter(|p| seen.insert(p.items.clone()))
            .map(|p| p.items.clone())
            .collect();
        FeatureSpace {
            n_items,
            include_all_items: true,
            patterns,
            n_classes,
        }
    }

    /// A space containing **only** the given features (single items allowed):
    /// the `Item_FS` layout. Deduplicates, keeps any length ≥ 1.
    pub fn selected_only(n_items: usize, n_classes: usize, selected: &[MinedPattern]) -> Self {
        let mut seen = std::collections::HashSet::new();
        let patterns: Vec<Vec<Item>> = selected
            .iter()
            .filter(|p| !p.items.is_empty())
            .filter(|p| seen.insert(p.items.clone()))
            .map(|p| p.items.clone())
            .collect();
        FeatureSpace {
            n_items,
            include_all_items: false,
            patterns,
            n_classes,
        }
    }

    /// A feature space with no pattern features (the `Item_All` baseline).
    pub fn items_only(n_items: usize, n_classes: usize) -> Self {
        FeatureSpace {
            n_items,
            include_all_items: true,
            patterns: Vec::new(),
            n_classes,
        }
    }

    /// Total feature count `d'`.
    pub fn n_features(&self) -> usize {
        (if self.include_all_items {
            self.n_items
        } else {
            0
        }) + self.patterns.len()
    }

    /// Transforms a transaction database (train or test) into the extended
    /// sparse binary representation.
    ///
    /// # Panics
    /// Panics if `ts` has more items than the fitted space.
    pub fn transform(&self, ts: &TransactionSet) -> SparseBinaryMatrix {
        assert!(
            ts.n_items() <= self.n_items,
            "transaction set has {} items but the feature space was fitted on {}",
            ts.n_items(),
            self.n_items
        );
        let offset = if self.include_all_items {
            self.n_items
        } else {
            0
        };
        let rows: Vec<Vec<u32>> = ts
            .transactions()
            .iter()
            .map(|tx| {
                let mut row: Vec<u32> = if self.include_all_items {
                    tx.iter().map(|i| i.0).collect()
                } else {
                    Vec::new()
                };
                for (k, p) in self.patterns.iter().enumerate() {
                    if contains_sorted(tx, p) {
                        row.push((offset + k) as u32);
                    }
                }
                row
            })
            .collect();
        SparseBinaryMatrix::new(
            self.n_features(),
            rows,
            ts.labels().to_vec(),
            self.n_classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::ClassId;

    fn ts() -> TransactionSet {
        TransactionSet::new(
            4,
            2,
            vec![
                vec![Item(0), Item(1)],
                vec![Item(0), Item(2)],
                vec![Item(1), Item(2), Item(3)],
            ],
            vec![ClassId(0), ClassId(0), ClassId(1)],
        )
    }

    fn pat(items: &[u32]) -> MinedPattern {
        MinedPattern {
            items: items.iter().map(|&i| Item(i)).collect(),
            support: 1,
            class_supports: vec![1, 0],
        }
    }

    #[test]
    fn items_plus_pattern_features() {
        let fs = FeatureSpace::new(4, 2, &[pat(&[0, 1]), pat(&[1, 2])]);
        assert_eq!(fs.n_features(), 6);
        let m = fs.transform(&ts());
        // row 0 contains items 0,1 and pattern {0,1} (feature 4)
        assert_eq!(m.rows[0], vec![0, 1, 4]);
        // row 1: items 0,2; no pattern fires
        assert_eq!(m.rows[1], vec![0, 2]);
        // row 2: items 1,2,3 and pattern {1,2} (feature 5)
        assert_eq!(m.rows[2], vec![1, 2, 3, 5]);
        assert_eq!(m.labels, vec![ClassId(0), ClassId(0), ClassId(1)]);
    }

    #[test]
    fn singletons_and_duplicates_dropped_in_union_space() {
        let fs = FeatureSpace::new(4, 2, &[pat(&[2]), pat(&[0, 1]), pat(&[0, 1])]);
        assert_eq!(fs.patterns.len(), 1);
    }

    #[test]
    fn selected_only_space() {
        // Item_FS-style: keep only features {0} and {1,2}.
        let fs = FeatureSpace::selected_only(4, 2, &[pat(&[0]), pat(&[1, 2])]);
        assert_eq!(fs.n_features(), 2);
        let m = fs.transform(&ts());
        assert_eq!(m.rows[0], vec![0]); // has item 0, pattern {1,2} absent
        assert_eq!(m.rows[1], vec![0]);
        assert_eq!(m.rows[2], vec![1]); // pattern {1,2} fires as feature 1
    }

    #[test]
    fn selected_only_dedups_and_keeps_singletons() {
        let fs = FeatureSpace::selected_only(4, 2, &[pat(&[0]), pat(&[0]), pat(&[3])]);
        assert_eq!(fs.n_features(), 2);
    }

    #[test]
    fn items_only_space() {
        let fs = FeatureSpace::items_only(4, 2);
        assert_eq!(fs.n_features(), 4);
        let m = fs.transform(&ts());
        assert_eq!(m.rows[0], vec![0, 1]);
    }

    #[test]
    fn transform_applies_to_unseen_data() {
        let fs = FeatureSpace::new(4, 2, &[pat(&[0, 1])]);
        let test = TransactionSet::new(
            4,
            2,
            vec![vec![Item(0), Item(1), Item(3)]],
            vec![ClassId(1)],
        );
        let m = fs.transform(&test);
        assert_eq!(m.rows[0], vec![0, 1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "fitted on")]
    fn wider_test_universe_panics() {
        let fs = FeatureSpace::items_only(2, 2);
        let test = TransactionSet::new(3, 2, vec![vec![Item(2)]], vec![ClassId(0)]);
        fs.transform(&test);
    }
}
