//! Vendored, std-only stand-in for the parts of the `criterion` crate this
//! workspace uses. The build environment has no crates.io access, so the
//! real `criterion` can never be fetched; this crate keeps the same API
//! shape (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`) so
//! the bench targets compile and run unchanged.
//!
//! Statistics are intentionally simple: each benchmark runs a calibration
//! pass, then `sample_size` timed samples, and reports min/mean/max
//! nanoseconds per iteration on stdout. No plots, no persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (callers may also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _crit: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 20, &mut f);
        self
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _crit: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot code.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// `true` under `DFP_BENCH_SMOKE=1`: benches run with minimal calibration
/// and two samples each — a fast correctness pass for CI, not a measurement.
fn smoke_mode() -> bool {
    std::env::var("DFP_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let (samples, target) = if smoke_mode() {
        (samples.min(2), Duration::from_micros(100))
    } else {
        (samples, Duration::from_millis(5))
    };
    // Calibration: grow the iteration count until one sample takes ≥ target
    // (or a single iteration is already slower than that).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {label:<48} [{} {} {}]  ({iters} iters × {samples} samples)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renderings() {
        assert_eq!(BenchmarkId::new("mine", 42).label, "mine/42");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
        assert_eq!(BenchmarkId::from("abc").label, "abc");
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(2);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
                b.iter(|| x * 2)
            });
            ran += 1;
            g.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn format_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }
}
