//! Additional discriminative measures beyond information gain and Fisher
//! score: χ², odds ratio, and support difference (a.k.a. *discriminative
//! support*, the measure DDPMine — the follow-up to this paper — optimises).
//!
//! These extend Definition 3 (any "relevance measure `S` mapping a pattern
//! to a real value" can drive MMRFS) and are exercised by the ablation
//! examples/tests.

/// χ² statistic of a binary feature against a binary-or-multiclass label
/// (contingency of coverage × class).
///
/// # Panics
/// Panics if the slices have different lengths or supports exceed counts.
pub fn chi_square(class_counts: &[usize], pattern_class_supports: &[u32]) -> f64 {
    assert_eq!(
        class_counts.len(),
        pattern_class_supports.len(),
        "class count vectors must align"
    );
    let n: usize = class_counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let support: u32 = pattern_class_supports.iter().sum();
    let n_f = n as f64;
    let theta = support as f64 / n_f;
    let mut chi = 0.0;
    for (&nc, &sc) in class_counts.iter().zip(pattern_class_supports) {
        assert!(sc as usize <= nc, "per-class support exceeds class count");
        if nc == 0 {
            continue;
        }
        let e1 = nc as f64 * theta; // expected covered
        let e0 = nc as f64 * (1.0 - theta); // expected uncovered
        if e1 > 0.0 {
            let d = sc as f64 - e1;
            chi += d * d / e1;
        }
        if e0 > 0.0 {
            let d = (nc as f64 - sc as f64) - e0;
            chi += d * d / e0;
        }
    }
    chi
}

/// Odds ratio of the pattern for class `c` with Haldane–Anscombe 0.5
/// smoothing: `(a+½)(d+½) / ((b+½)(c+½))` for the coverage × membership
/// 2×2 table.
pub fn odds_ratio(class_counts: &[usize], pattern_class_supports: &[u32], class: usize) -> f64 {
    let n: usize = class_counts.iter().sum();
    let support: u32 = pattern_class_supports.iter().sum();
    let a = pattern_class_supports[class] as f64; // covered, in class
    let b = support as f64 - a; // covered, not in class
    let c = class_counts[class] as f64 - a; // uncovered, in class
    let d = n as f64 - support as f64 - c; // uncovered, not in class
    ((a + 0.5) * (d + 0.5)) / ((b + 0.5) * (c + 0.5))
}

/// Support difference for class `c`: `P(α | c) − P(α | ¬c)` — DDPMine's
/// discriminative-support style measure, in `[-1, 1]`.
pub fn support_difference(
    class_counts: &[usize],
    pattern_class_supports: &[u32],
    class: usize,
) -> f64 {
    let nc = class_counts[class];
    let n_rest: usize = class_counts.iter().sum::<usize>() - nc;
    let sc = pattern_class_supports[class] as f64;
    let s_rest: f64 = pattern_class_supports
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != class)
        .map(|(_, &s)| s as f64)
        .sum();
    let p_in = if nc == 0 { 0.0 } else { sc / nc as f64 };
    let p_out = if n_rest == 0 {
        0.0
    } else {
        s_rest / n_rest as f64
    };
    p_in - p_out
}

/// The best (maximum) support difference over all classes — a symmetric,
/// class-agnostic relevance value.
pub fn max_support_difference(class_counts: &[usize], pattern_class_supports: &[u32]) -> f64 {
    (0..class_counts.len())
        .map(|c| support_difference(class_counts, pattern_class_supports, c))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn chi_square_independence_is_zero() {
        assert!(chi_square(&[10, 10], &[5, 5]).abs() < EPS);
        assert!(chi_square(&[20, 10], &[10, 5]).abs() < EPS);
    }

    #[test]
    fn chi_square_perfect_association() {
        // covers exactly class 0 (10 of 20): χ² = n = 20
        assert!((chi_square(&[10, 10], &[10, 0]) - 20.0).abs() < EPS);
    }

    #[test]
    fn chi_square_matches_rule_chi_square_shape() {
        // monotone in association strength
        let weak = chi_square(&[10, 10], &[6, 4]);
        let strong = chi_square(&[10, 10], &[9, 1]);
        assert!(strong > weak);
    }

    #[test]
    fn odds_ratio_directions() {
        // positively associated with class 0
        let or0 = odds_ratio(&[10, 10], &[8, 2], 0);
        assert!(or0 > 1.0);
        // and symmetrically negatively with class 1
        let or1 = odds_ratio(&[10, 10], &[8, 2], 1);
        assert!(or1 < 1.0);
        // independence → ~1
        let ind = odds_ratio(&[10, 10], &[5, 5], 0);
        assert!((ind - 1.0).abs() < 0.1);
    }

    #[test]
    fn odds_ratio_no_division_by_zero() {
        let or = odds_ratio(&[5, 5], &[5, 0], 0);
        assert!(or.is_finite() && or > 1.0);
    }

    #[test]
    fn support_difference_values() {
        assert!((support_difference(&[10, 10], &[10, 0], 0) - 1.0).abs() < EPS);
        assert!((support_difference(&[10, 10], &[0, 10], 0) + 1.0).abs() < EPS);
        assert!(support_difference(&[10, 10], &[5, 5], 0).abs() < EPS);
        // empty rest partition
        assert!((support_difference(&[10, 0], &[5, 0], 0) - 0.5).abs() < EPS);
    }

    #[test]
    fn max_support_difference_symmetric() {
        let v = max_support_difference(&[10, 10], &[2, 9]);
        assert!((v - 0.7).abs() < EPS);
        assert!(max_support_difference(&[10, 10], &[0, 0]).abs() < EPS);
    }
}
