//! # dfp-measures — discriminative measures and their support-dependent bounds
//!
//! Implements §3.1–3.2 of the paper:
//!
//! * [`entropy`] — entropy, conditional entropy and **information gain**
//!   `IG(C|X) = H(C) − H(C|X)` (Eq. 1) of a binary pattern feature,
//!   multiclass-capable;
//! * [`fisher`] — the **Fisher score** (Eq. 4) specialised to binary
//!   features;
//! * [`bounds`] — the theoretical upper bounds as functions of support θ:
//!   `IGub(θ)` (Eq. 2–3, both the `θ ≤ p` and `θ > p` branches and both
//!   boundary values of `q`) and `FRub(θ)` (Eq. 6 and its symmetric case);
//! * [`minsup`] — the paper's `min_sup`-setting strategy (Eq. 8):
//!   `θ* = argmax_θ { IGub(θ) ≤ IG0 }`, solved over absolute supports;
//! * [`mod@redundancy`] — the Jaccard-weighted redundancy `R(α, β)` (Eq. 9)
//!   consumed by the MMRFS selector;
//! * [`relevance`] — a small dispatch enum so selection code can switch
//!   between information gain and Fisher score as the relevance measure `S`.
//!
//! All entropies are in **bits** (`log2`), matching the paper's figures where
//! binary-class information gain tops out at 1.0.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod contrast;
pub mod entropy;
pub mod fisher;
pub mod minsup;
pub mod redundancy;
pub mod relevance;

pub use bounds::{fisher_upper_bound, ig_upper_bound, ig_upper_bound_multiclass};
pub use contrast::{chi_square, max_support_difference, odds_ratio, support_difference};
pub use entropy::{binary_entropy, entropy_of_counts, info_gain};
pub use fisher::fisher_score;
pub use minsup::{theta_star, MinSupStrategy};
pub use redundancy::redundancy;
pub use relevance::RelevanceMeasure;
