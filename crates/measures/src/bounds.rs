//! Theoretical upper bounds of discriminative measures as functions of
//! pattern support θ (paper §3.1.2).
//!
//! For a binary class variable with prior `p = P(c = 1)` and a binary
//! pattern feature with `P(x = 1) = θ`, write `q = P(c = 1 | x = 1)`.
//! `q` is constrained to the feasible interval
//! `[max(0, (p − (1 − θ))/θ), min(1, p/θ)]`; the conditional entropy
//! `H(C|X)` is concave in `q`, so its minimum over the interval — and hence
//! the maximum of `IG = H(C) − H(C|X)` — is attained at one of the two
//! endpoints. The paper discusses the `q = 1` endpoint for `θ ≤ p` (Eq. 3)
//! and `q = p/θ` for `θ > p`; this module evaluates **both** endpoints and
//! takes the true extremum, which coincides with the paper's expressions in
//! the cases it analyses and remains a sound bound for all `p`.
//!
//! The same endpoint argument gives the Fisher-score bound: `Fr` grows with
//! `(p − q)²` (Eq. 5), so its maximum is at the feasible `q` farthest from
//! `p`; at `θ ≤ p`, `q = 1` yields the paper's closed form
//! `FRub = θ(1−p)/(p−θ)` (Eq. 6), which diverges as `θ → p`.

use crate::entropy::binary_entropy;
use crate::fisher::fisher_score_theta_p_q;

/// Feasible interval of `q = P(c=1 | x=1)` for given θ and p.
fn q_interval(theta: f64, p: f64) -> (f64, f64) {
    if theta <= 0.0 {
        return (0.0, 1.0); // vacuous; callers special-case θ = 0
    }
    let lo = ((p - (1.0 - theta)) / theta).max(0.0);
    let hi = (p / theta).min(1.0);
    (lo, hi)
}

/// Conditional entropy `H(C|X)` for parameters (θ, p, q), in bits.
pub fn conditional_entropy(theta: f64, p: f64, q: f64) -> f64 {
    if theta <= 0.0 {
        return binary_entropy(p);
    }
    if theta >= 1.0 {
        return binary_entropy(p); // q is forced to p
    }
    let p0 = ((p - theta * q) / (1.0 - theta)).clamp(0.0, 1.0);
    theta * binary_entropy(q) + (1.0 - theta) * binary_entropy(p0)
}

/// `IGub(θ)` for a **binary** class problem with prior `p` (Eq. 2):
/// the largest information gain any feature of support θ can achieve.
///
/// Zero at θ = 0 and θ = 1; maximal (`H(C)`) at θ = p and θ = 1 − p.
pub fn ig_upper_bound(theta: f64, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&theta), "theta={theta}");
    debug_assert!((0.0..=1.0).contains(&p), "p={p}");
    if theta <= 0.0 || theta >= 1.0 || p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    let (lo, hi) = q_interval(theta, p);
    let h_lb = conditional_entropy(theta, p, lo).min(conditional_entropy(theta, p, hi));
    (binary_entropy(p) - h_lb).max(0.0)
}

/// `IGub(θ)` restricted to the `q = 1` branch — exactly the curve the paper
/// plots in Figure 2 for `θ ≤ p` (Eq. 3), extended by the `q = p/θ` branch
/// for `θ > p`. Provided so the figure-regeneration harness can reproduce
/// the published curve; [`ig_upper_bound`] is the tight two-endpoint bound.
pub fn ig_upper_bound_paper(theta: f64, p: f64) -> f64 {
    if theta <= 0.0 || theta >= 1.0 || p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    let q = if theta <= p { 1.0 } else { p / theta };
    (binary_entropy(p) - conditional_entropy(theta, p, q)).max(0.0)
}

/// Support-dependent information-gain bound for **multiclass** problems:
/// `IG(C|X) = I(C; X) ≤ min(H(C), H(X)) = min(H(C), H2(θ))`.
///
/// This is the sound generalisation used by the `min_sup` strategy on
/// datasets with more than two classes; for two classes the binary bound
/// [`ig_upper_bound`] is tighter and used instead.
pub fn ig_upper_bound_multiclass(theta: f64, class_priors: &[f64]) -> f64 {
    let h_c = crate::entropy::entropy_of_probs(class_priors);
    binary_entropy(theta.clamp(0.0, 1.0)).min(h_c)
}

/// Dispatches to the tight binary bound for two classes and to the
/// `min(H(C), H2(θ))` bound otherwise.
pub fn ig_upper_bound_for(theta: f64, class_priors: &[f64]) -> f64 {
    if class_priors.len() == 2 {
        ig_upper_bound(theta, class_priors[1])
    } else {
        ig_upper_bound_multiclass(theta, class_priors)
    }
}

/// `FRub(θ)` for a binary class problem with prior `p`: the largest Fisher
/// score any feature of support θ can achieve, attained at the feasible `q`
/// endpoint farthest from `p`. Returns `+∞` where a perfect separator of
/// support θ exists (θ = p or θ = 1 − p).
pub fn fisher_upper_bound(theta: f64, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&theta), "theta={theta}");
    if theta <= 0.0 || theta >= 1.0 || p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    let (lo, hi) = q_interval(theta, p);
    fisher_score_theta_p_q(theta, p, lo).max(fisher_score_theta_p_q(theta, p, hi))
}

/// The paper's closed-form Fisher bound `θ(1−p)/(p−θ)` (Eq. 6), valid for
/// `θ < p` at `q = 1`; `+∞` at `θ = p`. Exposed for the Figure 3 harness.
pub fn fisher_upper_bound_eq6(theta: f64, p: f64) -> f64 {
    if theta >= p {
        return f64::INFINITY;
    }
    theta * (1.0 - p) / (p - theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::info_gain;
    use crate::fisher::fisher_score;

    const EPS: f64 = 1e-9;

    #[test]
    fn ig_bound_edges() {
        assert_eq!(ig_upper_bound(0.0, 0.4), 0.0);
        assert_eq!(ig_upper_bound(1.0, 0.4), 0.0);
        assert_eq!(ig_upper_bound(0.5, 0.0), 0.0);
        // at θ = p the bound reaches H(C): a feature covering exactly one
        // class is a perfect separator.
        assert!((ig_upper_bound(0.4, 0.4) - binary_entropy(0.4)).abs() < EPS);
        assert!((ig_upper_bound(0.6, 0.4) - binary_entropy(0.4)).abs() < EPS);
    }

    #[test]
    fn ig_bound_monotone_on_ascending_branch() {
        // For θ ∈ (0, min(p, 1−p)], the bound increases with θ
        // (the paper's core monotonicity result, §3.1.2).
        let p = 0.35;
        let mut last = 0.0;
        for i in 1..=35 {
            let theta = i as f64 / 100.0;
            let b = ig_upper_bound(theta, p);
            assert!(
                b + 1e-12 >= last,
                "IGub not monotone at θ={theta}: {b} < {last}"
            );
            last = b;
        }
    }

    #[test]
    fn ig_bound_small_support_is_small() {
        // "for a support of θ = 5% … the upper bound is as low as 0.06" —
        // paper's Figure 2(a) observation, p ≈ 0.555 on austral.
        let b = ig_upper_bound_paper(0.05, 0.555);
        assert!(b < 0.09, "bound at 5% support is {b}");
        // the tight bound is also small
        assert!(ig_upper_bound(0.05, 0.555) < 0.15);
    }

    #[test]
    fn ig_bound_dominates_every_achievable_gain() {
        // Exhaustive check on a small universe: every (n1 covered, n2 covered)
        // configuration's IG must be ≤ IGub(θ) at its support.
        let (n1, n2) = (7usize, 5usize);
        let n = n1 + n2;
        let p = n1 as f64 / n as f64;
        for s1 in 0..=n1 {
            for s2 in 0..=n2 {
                let ig = info_gain(&[n1, n2], &[s1 as u32, s2 as u32]);
                let theta = (s1 + s2) as f64 / n as f64;
                let bound = ig_upper_bound(theta, p);
                assert!(
                    ig <= bound + 1e-9,
                    "IG {ig} > IGub {bound} at s1={s1} s2={s2}"
                );
            }
        }
    }

    #[test]
    fn paper_branch_matches_tight_bound_for_low_minority_support() {
        // For p ≤ 0.5 and θ ≤ p, q = 1 is the extremal endpoint, so the
        // paper's expression equals the tight bound.
        for &(theta, p) in &[(0.1, 0.4), (0.2, 0.45), (0.3, 0.5)] {
            let a = ig_upper_bound(theta, p);
            let b = ig_upper_bound_paper(theta, p);
            assert!((a - b).abs() < EPS, "θ={theta} p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn eq3_closed_form_agrees() {
        // Eq. 3: Hlb|q=1 = (θ−1)( (p−θ)/(1−θ)·log((p−θ)/(1−θ)) + (1−p)/(1−θ)·log((1−p)/(1−θ)) )
        let (theta, p): (f64, f64) = (0.2, 0.45);
        let a: f64 = (p - theta) / (1.0 - theta);
        let b: f64 = (1.0 - p) / (1.0 - theta);
        let eq3 = (theta - 1.0) * (a * a.log2() + b * b.log2());
        let ours = conditional_entropy(theta, p, 1.0);
        assert!((eq3 - ours).abs() < EPS, "{eq3} vs {ours}");
    }

    #[test]
    fn fisher_bound_dominates_every_achievable_score() {
        let (n1, n2) = (6usize, 9usize);
        let n = n1 + n2;
        let p = n2 as f64 / n as f64; // class "1" = second class by symmetry
        for s1 in 0..=n1 {
            for s2 in 0..=n2 {
                let fr = fisher_score(&[n1, n2], &[s1 as u32, s2 as u32]);
                if !fr.is_finite() {
                    continue; // perfect separators map to the ∞ bound at θ = p
                }
                let theta = (s1 + s2) as f64 / n as f64;
                let bound = fisher_upper_bound(theta, p);
                assert!(
                    fr <= bound + 1e-9,
                    "Fr {fr} > FRub {bound} at s1={s1} s2={s2}"
                );
            }
        }
    }

    #[test]
    fn fisher_eq6_matches_endpoint_eval() {
        for &(theta, p) in &[(0.05, 0.3), (0.1, 0.4), (0.25, 0.45)] {
            let closed_form = fisher_upper_bound_eq6(theta, p);
            let eval = fisher_score_theta_p_q(theta, p, 1.0);
            assert!(
                (closed_form - eval).abs() < 1e-6,
                "θ={theta} p={p}: {closed_form} vs {eval}"
            );
        }
    }

    #[test]
    fn fisher_bound_increases_toward_p() {
        let p = 0.4;
        let mut last = 0.0;
        for i in 1..40 {
            let theta = i as f64 / 100.0;
            let b = fisher_upper_bound(theta, p);
            assert!(b >= last - 1e-9, "FRub not increasing at θ={theta}");
            last = b;
        }
    }

    #[test]
    fn multiclass_bound_sound() {
        // 3 classes: IG ≤ min(H(C), H2(θ)).
        let counts = [5usize, 3, 4];
        let n: usize = counts.iter().sum();
        let priors: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        for s0 in 0..=counts[0] {
            for s1 in 0..=counts[1] {
                for s2 in 0..=counts[2] {
                    let ig = info_gain(&counts, &[s0 as u32, s1 as u32, s2 as u32]);
                    let theta = (s0 + s1 + s2) as f64 / n as f64;
                    let bound = ig_upper_bound_multiclass(theta, &priors);
                    assert!(ig <= bound + 1e-9, "IG {ig} > {bound} at ({s0},{s1},{s2})");
                }
            }
        }
    }

    #[test]
    fn dispatch_picks_tighter_binary_bound() {
        let theta = 0.1;
        let priors = [0.6, 0.4];
        let tight = ig_upper_bound_for(theta, &priors);
        let loose = ig_upper_bound_multiclass(theta, &priors);
        assert!(tight <= loose + EPS);
    }
}
