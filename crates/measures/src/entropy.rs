//! Entropy, conditional entropy and information gain (paper Eq. 1).
//!
//! A pattern α is viewed as a binary random variable `X` (presence in a
//! transaction); `IG(C|X) = H(C) − H(C|X)`. All logarithms are base 2.

/// Binary entropy `H2(p) = −p·log2(p) − (1−p)·log2(1−p)`, with
/// `H2(0) = H2(1) = 0`.
pub fn binary_entropy(p: f64) -> f64 {
    debug_assert!((-1e-9..=1.0 + 1e-9).contains(&p), "p={p} out of [0,1]");
    let p = p.clamp(0.0, 1.0);
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.log2();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).log2();
    }
    h
}

/// Entropy of a discrete distribution given by non-negative counts.
pub fn entropy_of_counts(counts: &[usize]) -> f64 {
    let n: usize = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Entropy of a probability vector (must sum to ~1; zero entries allowed).
pub fn entropy_of_probs(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.log2())
        .sum()
}

/// Information gain of a binary pattern feature.
///
/// * `class_counts[c]` — number of instances of class `c` in the database;
/// * `pattern_class_supports[c]` — number of covering instances of class `c`.
///
/// `IG(C|X) = H(C) − [θ·H(C|x=1) + (1−θ)·H(C|x=0)]` where
/// `θ = support / n`.
///
/// # Panics
/// Panics if the slices have different lengths or any per-class support
/// exceeds the class count.
pub fn info_gain(class_counts: &[usize], pattern_class_supports: &[u32]) -> f64 {
    assert_eq!(
        class_counts.len(),
        pattern_class_supports.len(),
        "class count vectors must align"
    );
    let n: usize = class_counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let covered: Vec<usize> = pattern_class_supports.iter().map(|&s| s as usize).collect();
    let uncovered: Vec<usize> = class_counts
        .iter()
        .zip(&covered)
        .map(|(&total, &cov)| {
            assert!(cov <= total, "per-class support exceeds class count");
            total - cov
        })
        .collect();
    let m: usize = covered.iter().sum();
    let h_c = entropy_of_counts(class_counts);
    let theta = m as f64 / n as f64;
    let h_cond =
        theta * entropy_of_counts(&covered) + (1.0 - theta) * entropy_of_counts(&uncovered);
    (h_c - h_cond).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn binary_entropy_values() {
        assert!((binary_entropy(0.5) - 1.0).abs() < EPS);
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        // H2(0.25) = 0.811278...
        assert!((binary_entropy(0.25) - 0.8112781244591328).abs() < EPS);
        // symmetry
        assert!((binary_entropy(0.3) - binary_entropy(0.7)).abs() < EPS);
    }

    #[test]
    fn entropy_of_counts_matches_binary() {
        assert!((entropy_of_counts(&[1, 1]) - 1.0).abs() < EPS);
        assert!((entropy_of_counts(&[1, 3]) - binary_entropy(0.25)).abs() < EPS);
        assert_eq!(entropy_of_counts(&[5, 0]), 0.0);
        assert_eq!(entropy_of_counts(&[]), 0.0);
        assert_eq!(entropy_of_counts(&[0, 0]), 0.0);
        // uniform over 4 classes = 2 bits
        assert!((entropy_of_counts(&[2, 2, 2, 2]) - 2.0).abs() < EPS);
    }

    #[test]
    fn perfectly_discriminative_pattern() {
        // 10 instances, 5/5 split; pattern covers exactly class 0.
        let ig = info_gain(&[5, 5], &[5, 0]);
        assert!((ig - 1.0).abs() < EPS);
    }

    #[test]
    fn useless_pattern_zero_gain() {
        // Covers half of each class: conditional distribution unchanged.
        let ig = info_gain(&[10, 10], &[5, 5]);
        assert!(ig.abs() < EPS);
        // Covers everything.
        let ig = info_gain(&[10, 10], &[10, 10]);
        assert!(ig.abs() < EPS);
        // Covers nothing.
        let ig = info_gain(&[10, 10], &[0, 0]);
        assert!(ig.abs() < EPS);
    }

    #[test]
    fn hand_computed_example() {
        // n = 8, classes 5/3 → H(C) = H2(3/8) = 0.954434...
        // Pattern covers 3 of class 0, 1 of class 1 → θ = 0.5.
        // H(C|x=1) = H2(1/4) = 0.8112781, H(C|x=0) = H2(2/4) = 1.0
        // IG = 0.9544340 - 0.5·0.8112781 - 0.5·1.0 = 0.0487949...
        let ig = info_gain(&[5, 3], &[3, 1]);
        let expect = binary_entropy(3.0 / 8.0) - 0.5 * binary_entropy(0.25) - 0.5;
        assert!((ig - expect).abs() < EPS);
        assert!(ig > 0.0);
    }

    #[test]
    fn multiclass_gain() {
        // 3 classes 4/4/4; pattern covers all of class 2 only.
        let ig = info_gain(&[4, 4, 4], &[0, 0, 4]);
        // H(C) = log2(3); H(C|x=1) = 0; H(C|x=0) = 1 (two classes even)
        let expect = 3f64.log2() - (2.0 / 3.0);
        assert!((ig - expect).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "exceeds class count")]
    fn support_above_count_panics() {
        info_gain(&[2, 2], &[3, 0]);
    }

    #[test]
    fn empty_database_zero() {
        assert_eq!(info_gain(&[0, 0], &[0, 0]), 0.0);
    }
}
