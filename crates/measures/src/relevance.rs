//! Relevance measures `S(α)` (paper Definition 3): the discriminative power
//! of a pattern w.r.t. the class label. Information gain and Fisher score
//! are the two instances the paper names; both are implemented here behind
//! one dispatch enum so selection code stays measure-agnostic.

use crate::contrast::{chi_square, max_support_difference};
use crate::entropy::info_gain;
use crate::fisher::fisher_score;
use dfp_mining::MinedPattern;

/// Which relevance measure MMRFS (and ranking baselines) use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelevanceMeasure {
    /// Information gain `IG(C|X)` (Eq. 1) — the paper's primary measure.
    #[default]
    InfoGain,
    /// Fisher score (Eq. 4).
    FisherScore,
    /// χ² statistic of the coverage × class contingency.
    ChiSquare,
    /// Maximum per-class support difference `P(α|c) − P(α|¬c)` (the
    /// DDPMine-style discriminative support).
    SupportDifference,
}

impl RelevanceMeasure {
    /// Relevance of a mined pattern given the database's per-class counts.
    pub fn score(&self, pattern: &MinedPattern, class_counts: &[usize]) -> f64 {
        match self {
            RelevanceMeasure::InfoGain => info_gain(class_counts, &pattern.class_supports),
            RelevanceMeasure::FisherScore => fisher_score(class_counts, &pattern.class_supports),
            RelevanceMeasure::ChiSquare => chi_square(class_counts, &pattern.class_supports),
            RelevanceMeasure::SupportDifference => {
                max_support_difference(class_counts, &pattern.class_supports)
            }
        }
    }

    /// Scores a whole candidate list.
    pub fn score_all(&self, patterns: &[MinedPattern], class_counts: &[usize]) -> Vec<f64> {
        patterns
            .iter()
            .map(|p| self.score(p, class_counts))
            .collect()
    }
}

impl std::fmt::Display for RelevanceMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelevanceMeasure::InfoGain => write!(f, "information gain"),
            RelevanceMeasure::FisherScore => write!(f, "Fisher score"),
            RelevanceMeasure::ChiSquare => write!(f, "chi-square"),
            RelevanceMeasure::SupportDifference => write!(f, "support difference"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::transactions::Item;

    fn pattern(class_supports: &[u32]) -> MinedPattern {
        MinedPattern {
            items: vec![Item(0)],
            support: class_supports.iter().sum(),
            class_supports: class_supports.to_vec(),
        }
    }

    #[test]
    fn both_measures_rank_discriminative_above_flat() {
        let counts = [10usize, 10];
        let strong = pattern(&[9, 1]);
        let weak = pattern(&[5, 5]);
        for m in [
            RelevanceMeasure::InfoGain,
            RelevanceMeasure::FisherScore,
            RelevanceMeasure::ChiSquare,
            RelevanceMeasure::SupportDifference,
        ] {
            assert!(
                m.score(&strong, &counts) > m.score(&weak, &counts),
                "{m} ranking wrong"
            );
        }
    }

    #[test]
    fn score_all_shape() {
        let counts = [4usize, 4];
        let pats = vec![pattern(&[4, 0]), pattern(&[2, 2]), pattern(&[0, 3])];
        let s = RelevanceMeasure::InfoGain.score_all(&pats, &counts);
        assert_eq!(s.len(), 3);
        assert!(s[0] > s[1] && s[2] > s[1]);
    }

    #[test]
    fn display_names() {
        assert_eq!(RelevanceMeasure::InfoGain.to_string(), "information gain");
        assert_eq!(RelevanceMeasure::FisherScore.to_string(), "Fisher score");
    }
}
