//! Pattern redundancy `R(α, β)` (paper Eq. 9) — the penalty term of MMRFS.
//!
//! `R(α, β) = P(α, β) / (P(α) + P(β) − P(α, β)) × min(S(α), S(β))`
//!
//! The first factor is the Jaccard overlap of the two patterns' tidsets; the
//! second caps redundancy at the weaker pattern's relevance, so that
//! `g(α) = S(α) − max_β R(α, β)` (Eq. 10) cannot be dragged negative by
//! overlap with an irrelevant pattern.

use dfp_data::bitset::Bitset;
use dfp_data::rowset::RowSet;

/// `R(α, β)` from tidsets and relevance values.
///
/// # Panics
/// Panics if the tidsets have different lengths.
pub fn redundancy(tids_a: &Bitset, tids_b: &Bitset, s_a: f64, s_b: f64) -> f64 {
    redundancy_from_overlap(tids_a.jaccard(tids_b), s_a, s_b)
}

/// `R(α, β)` from [`RowSet`] tidsets (dense or compressed).
///
/// The Jaccard overlap comes from the fused intersection/union kernel, so
/// both counts cost a single pass over the operands.
///
/// # Panics
/// Panics if the row sets have different lengths.
pub fn redundancy_rowset(tids_a: &RowSet, tids_b: &RowSet, s_a: f64, s_b: f64) -> f64 {
    redundancy_from_overlap(tids_a.jaccard(tids_b), s_a, s_b)
}

/// `R(α, β)` when the Jaccard overlap is already known.
pub fn redundancy_from_overlap(jaccard: f64, s_a: f64, s_b: f64) -> f64 {
    debug_assert!((0.0..=1.0 + 1e-9).contains(&jaccard), "jaccard={jaccard}");
    let s_min = s_a.min(s_b);
    if !s_min.is_finite() {
        // min(S) can only be ∞ if both are ∞ (perfect separators); the
        // overlap factor still scales it meaningfully only when positive.
        return if jaccard > 0.0 { f64::INFINITY } else { 0.0 };
    }
    jaccard * s_min
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tids(len: usize, ones: &[usize]) -> Bitset {
        Bitset::from_indices(len, ones.iter().copied())
    }

    #[test]
    fn identical_patterns_fully_redundant() {
        let a = tids(10, &[1, 2, 3]);
        let r = redundancy(&a, &a, 0.8, 0.5);
        assert!((r - 0.5).abs() < 1e-12); // jaccard 1 × min(S)
    }

    #[test]
    fn disjoint_patterns_zero_redundancy() {
        let a = tids(10, &[1, 2]);
        let b = tids(10, &[5, 6]);
        assert_eq!(redundancy(&a, &b, 0.9, 0.9), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let a = tids(10, &[0, 1, 2, 3]);
        let b = tids(10, &[2, 3, 4, 5]);
        // jaccard = 2/6
        let r = redundancy(&a, &b, 0.6, 0.3);
        assert!((r - (2.0 / 6.0) * 0.3).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = tids(8, &[0, 1, 2]);
        let b = tids(8, &[1, 2, 5]);
        assert_eq!(redundancy(&a, &b, 0.4, 0.7), redundancy(&b, &a, 0.7, 0.4));
    }

    #[test]
    fn bounded_by_min_relevance() {
        let a = tids(8, &[0, 1, 2]);
        let b = tids(8, &[1, 2, 5]);
        let r = redundancy(&a, &b, 0.4, 0.7);
        assert!(r <= 0.4 + 1e-12);
    }

    #[test]
    fn rowset_variant_matches_dense() {
        let a = tids(300, &[0, 1, 2, 3, 100, 250]);
        let b = tids(300, &[2, 3, 4, 5, 250, 299]);
        let want = redundancy(&a, &b, 0.6, 0.3);
        let comp =
            |x: &Bitset| RowSet::Compressed(dfp_data::rowset::CompressedBitmap::from_bitset(x));
        for (ra, rb) in [
            (RowSet::Dense(a.clone()), RowSet::Dense(b.clone())),
            (comp(&a), comp(&b)),
            (comp(&a), RowSet::Dense(b.clone())),
        ] {
            let got = redundancy_rowset(&ra, &rb, 0.6, 0.3);
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn infinite_relevance_handling() {
        let a = tids(4, &[0, 1]);
        let b = tids(4, &[1, 2]);
        // one finite relevance caps the product
        let r = redundancy(&a, &b, f64::INFINITY, 2.0);
        assert!((r - (1.0 / 3.0) * 2.0).abs() < 1e-12);
        // both infinite with overlap → infinite redundancy
        assert_eq!(
            redundancy(&a, &b, f64::INFINITY, f64::INFINITY),
            f64::INFINITY
        );
        // both infinite, disjoint → zero
        let c = tids(4, &[3]);
        assert_eq!(redundancy(&a, &c, f64::INFINITY, f64::INFINITY), 0.0);
    }
}
