//! Fisher score of a binary pattern feature (paper Eq. 4).
//!
//! `Fr = Σ_i n_i (μ_i − μ)² / Σ_i n_i σ_i²` where `μ_i`/`σ_i²` are the mean
//! and (population) variance of the feature within class `i` and `μ` its
//! global mean. For a binary feature, `μ_i = s_i / n_i` and
//! `σ_i² = μ_i (1 − μ_i)`.
//!
//! Degenerate cases follow the paper's convention: if both numerator and
//! denominator are zero the score is `0`; if only the denominator is zero
//! (all classes internally constant but means differ — a perfect separator)
//! the score is `+∞`.

/// Fisher score from per-class counts.
///
/// * `class_counts[c]` — instances of class `c`;
/// * `pattern_class_supports[c]` — covering instances of class `c`.
///
/// # Panics
/// Panics if the slices have different lengths or any per-class support
/// exceeds the class count.
pub fn fisher_score(class_counts: &[usize], pattern_class_supports: &[u32]) -> f64 {
    assert_eq!(
        class_counts.len(),
        pattern_class_supports.len(),
        "class count vectors must align"
    );
    let n: usize = class_counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let support: u32 = pattern_class_supports.iter().sum();
    let mu = support as f64 / n as f64;
    let mut numerator = 0.0;
    let mut denominator = 0.0;
    for (&ni, &si) in class_counts.iter().zip(pattern_class_supports) {
        assert!(si as usize <= ni, "per-class support exceeds class count");
        if ni == 0 {
            continue;
        }
        let ni_f = ni as f64;
        let mu_i = si as f64 / ni_f;
        numerator += ni_f * (mu_i - mu) * (mu_i - mu);
        denominator += ni_f * mu_i * (1.0 - mu_i);
    }
    if denominator <= 0.0 {
        if numerator <= 1e-15 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        numerator / denominator
    }
}

/// Fisher score parameterised as in the paper's analysis (§3.1.2):
/// `θ = P(x=1)`, `p = P(c=1)`, `q = P(c=1 | x=1)`, two classes.
///
/// Used to evaluate the bound curves; exact fractional counts are allowed.
pub fn fisher_score_theta_p_q(theta: f64, p: f64, q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&theta));
    debug_assert!((0.0..=1.0).contains(&p));
    debug_assert!((0.0..=1.0).contains(&q));
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    // class 1: weight p, mean qθ/p ; class 2: weight 1-p, mean (1-q)θ/(1-p)
    let mu = theta;
    let mu1 = (q * theta / p).clamp(0.0, 1.0);
    let mu2 = ((1.0 - q) * theta / (1.0 - p)).clamp(0.0, 1.0);
    let numerator = p * (mu1 - mu) * (mu1 - mu) + (1.0 - p) * (mu2 - mu) * (mu2 - mu);
    let denominator = p * mu1 * (1.0 - mu1) + (1.0 - p) * mu2 * (1.0 - mu2);
    if denominator <= 0.0 {
        if numerator <= 1e-15 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        numerator / denominator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn perfect_separator_is_infinite() {
        // pattern covers exactly class 0 (zero within-class variance).
        assert_eq!(fisher_score(&[5, 5], &[5, 0]), f64::INFINITY);
    }

    #[test]
    fn useless_pattern_zero() {
        // covers same fraction of both classes → means equal → numerator 0.
        assert!(fisher_score(&[10, 10], &[5, 5]).abs() < EPS);
        // covers nothing / everything
        assert_eq!(fisher_score(&[10, 10], &[0, 0]), 0.0);
        assert_eq!(fisher_score(&[10, 10], &[10, 10]), 0.0);
    }

    #[test]
    fn hand_computed() {
        // classes 4/4; supports 3/1. μ = 0.5, μ1 = 0.75, μ2 = 0.25.
        // num = 4(0.25)² + 4(−0.25)² = 0.5
        // den = 4(0.75·0.25) + 4(0.25·0.75) = 1.5
        let fr = fisher_score(&[4, 4], &[3, 1]);
        assert!((fr - 0.5 / 1.5).abs() < EPS);
    }

    #[test]
    fn matches_theta_p_q_parameterisation() {
        // classes 6/4 (p = 0.6), supports 3/1 → θ = 0.4, q = 0.75.
        let counts = fisher_score(&[6, 4], &[3, 1]);
        let param = fisher_score_theta_p_q(0.4, 0.6, 0.75);
        assert!((counts - param).abs() < EPS, "{counts} vs {param}");
    }

    #[test]
    fn paper_eq6_closed_form() {
        // θ ≤ p, q = 1 → Fr = θ(1−p)/(p−θ)  (Eq. 6)
        for &(theta, p) in &[(0.1, 0.4), (0.2, 0.5), (0.05, 0.3)] {
            let fr = fisher_score_theta_p_q(theta, p, 1.0);
            let expect = theta * (1.0 - p) / (p - theta);
            assert!(
                (fr - expect).abs() < 1e-6,
                "θ={theta} p={p}: {fr} vs {expect}"
            );
        }
    }

    #[test]
    fn monotone_in_theta_for_fixed_p_q() {
        // Eq. 7: ∂Fr/∂θ ≥ 0 for θ ≤ p with fixed p, q.
        let p = 0.5;
        let q = 0.9;
        let mut last = 0.0;
        for i in 1..50 {
            let theta = 0.01 * i as f64; // up to 0.49 ≤ p
            let fr = fisher_score_theta_p_q(theta, p, q);
            assert!(fr + 1e-12 >= last, "not monotone at θ={theta}");
            last = fr;
        }
    }

    #[test]
    fn multiclass_score() {
        // 3 classes, pattern concentrated in class 0.
        let fr = fisher_score(&[4, 4, 4], &[4, 1, 1]);
        assert!(fr.is_finite() && fr > 0.0);
        // more concentrated → higher score
        let fr2 = fisher_score(&[4, 4, 4], &[4, 0, 1]);
        assert!(fr2 > fr);
    }

    #[test]
    fn empty_database() {
        assert_eq!(fisher_score(&[0, 0], &[0, 0]), 0.0);
    }
}
