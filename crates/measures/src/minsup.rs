//! The paper's `min_sup`-setting strategy (§3.2, Eq. 8):
//!
//! 1. compute the information-gain upper bound `IGub(θ)` as a function of
//!    support, from the class distribution alone;
//! 2. choose an information-gain threshold `IG0` (as feature-selection
//!    methods do);
//! 3. set `θ* = argmax_θ { IGub(θ) ≤ IG0 }` — every feature with support
//!    `θ ≤ θ*` has `IG ≤ IGub(θ) ≤ IGub(θ*) ≤ IG0` and can be skipped, so
//!    mining at `min_sup = θ*` loses no feature that would survive the
//!    IG filter;
//! 4. mine frequent patterns with `min_sup = θ*`.
//!
//! `IGub` rises on `(0, θ_peak]` and falls afterwards; Eq. 8's argmax is
//! taken on the **ascending branch** — that is the low-support cutoff the
//! strategy is after (the descending branch concerns stop-word-like
//! ultra-frequent patterns, handled by feature selection instead).

use crate::bounds::ig_upper_bound_for;

/// How the framework chooses its minimum support.
#[derive(Debug, Clone, PartialEq)]
pub enum MinSupStrategy {
    /// A fixed relative support `θ0 ∈ (0, 1]`.
    Relative(f64),
    /// A fixed absolute support count. Note: under cross validation the
    /// count is resolved against each training fold and clamped to its
    /// size — prefer [`MinSupStrategy::Relative`] when folds are smaller
    /// than the dataset the count was chosen for.
    Absolute(usize),
    /// The paper's strategy: derive `θ*` from an information-gain threshold
    /// `IG0` and the training class distribution (Eq. 8).
    InfoGainThreshold(f64),
}

impl MinSupStrategy {
    /// Resolves the strategy to an absolute support for a database of `n`
    /// transactions with the given class priors. Result is clamped to
    /// `[1, n]`.
    pub fn resolve(&self, n: usize, class_priors: &[f64]) -> usize {
        let abs = match self {
            MinSupStrategy::Relative(theta) => (n as f64 * theta).ceil() as usize,
            MinSupStrategy::Absolute(s) => *s,
            MinSupStrategy::InfoGainThreshold(ig0) => theta_star(*ig0, class_priors, n),
        };
        abs.clamp(1, n.max(1))
    }
}

/// Solves Eq. 8 over absolute supports: the largest `s ∈ [1, n]` on the
/// ascending branch of `IGub` with `IGub(s/n) ≤ IG0`, i.e. the highest
/// `min_sup` that provably discards only features an `IG0` filter would
/// discard anyway.
///
/// Returns `1` when even a single-transaction support can exceed `IG0`
/// (mine everything) and the peak support when `IG0 ≥ max IGub` (no support
/// level is excluded by the gain filter; callers get the least restrictive
/// sensible threshold on the ascending branch).
pub fn theta_star(ig0: f64, class_priors: &[f64], n: usize) -> usize {
    assert!(!class_priors.is_empty(), "need class priors");
    if n == 0 {
        return 1;
    }
    // The bound is monotone non-decreasing up to its peak; scan the ascending
    // branch. (n is at most tens of thousands here; a linear scan is exact
    // and instantaneous.)
    let mut best = 1usize;
    let mut last_bound = -1.0;
    for s in 1..=n {
        let theta = s as f64 / n as f64;
        let bound = ig_upper_bound_for(theta, class_priors);
        if bound + 1e-12 < last_bound {
            break; // descending branch reached
        }
        last_bound = bound;
        if bound <= ig0 {
            best = s;
        } else if s > 1 {
            // On the ascending branch the bound only grows; no later s
            // (before the peak) can satisfy the constraint again.
            break;
        }
    }
    best
}

/// The inverse mapping: the information-gain filter level that a given
/// `min_sup` corresponds to, `IG0 = IGub(θ)`. Useful for reporting what an
/// explicitly-chosen support threshold implies (§3.1.3's equivalence).
pub fn ig_threshold_of(min_sup_abs: usize, class_priors: &[f64], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    ig_upper_bound_for(min_sup_abs as f64 / n as f64, class_priors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ig_upper_bound_for;

    #[test]
    fn theta_star_bound_property() {
        // Definition check: IGub(θ*) ≤ IG0 < IGub(θ*+1) on the ascending branch.
        let priors = [0.555, 0.445];
        let n = 690; // austral-sized
        for &ig0 in &[0.01, 0.05, 0.1, 0.2, 0.4] {
            let s = theta_star(ig0, &priors, n);
            let at = ig_upper_bound_for(s as f64 / n as f64, &priors);
            assert!(at <= ig0 + 1e-9, "IG0={ig0}: IGub(θ*)={at}");
            let next = ig_upper_bound_for((s + 1) as f64 / n as f64, &priors);
            // either the next support violates IG0 or we're at the peak
            assert!(
                next > ig0 || next < at + 1e-12,
                "IG0={ig0}: θ* not maximal (next bound {next})"
            );
        }
    }

    #[test]
    fn larger_ig0_gives_larger_theta_star() {
        let priors = [0.5, 0.5];
        let n = 1000;
        let mut last = 0;
        for &ig0 in &[0.001, 0.01, 0.05, 0.1, 0.3, 0.6] {
            let s = theta_star(ig0, &priors, n);
            assert!(s >= last, "θ* not monotone in IG0");
            last = s;
        }
        assert!(last > 1);
    }

    #[test]
    fn tiny_ig0_mines_everything() {
        // IG0 below IGub(1/n) → θ* = 1 (cannot skip anything).
        let priors = [0.5, 0.5];
        assert_eq!(theta_star(0.0, &priors, 100), 1);
    }

    #[test]
    fn huge_ig0_returns_peak() {
        let priors = [0.4, 0.6];
        let n = 100;
        let s = theta_star(10.0, &priors, n);
        // peak of the binary bound on the ascending branch is near θ = 0.4
        assert!((s as i64 - 40).unsigned_abs() <= 2, "peak support {s}");
    }

    #[test]
    fn multiclass_uses_h2_bound() {
        let priors = [0.25; 4];
        let n = 400;
        let s = theta_star(0.2, &priors, n);
        // H2(θ) ≤ 0.2 → θ ≤ ~0.0311
        let theta = s as f64 / n as f64;
        assert!(crate::binary_entropy(theta) <= 0.2 + 1e-9);
        assert!(crate::binary_entropy((s + 1) as f64 / n as f64) > 0.2);
    }

    #[test]
    fn strategy_resolution() {
        let priors = [0.5, 0.5];
        assert_eq!(MinSupStrategy::Relative(0.1).resolve(100, &priors), 10);
        assert_eq!(MinSupStrategy::Relative(0.001).resolve(100, &priors), 1);
        assert_eq!(MinSupStrategy::Absolute(7).resolve(100, &priors), 7);
        assert_eq!(MinSupStrategy::Absolute(500).resolve(100, &priors), 100);
        let s = MinSupStrategy::InfoGainThreshold(0.05).resolve(100, &priors);
        assert_eq!(s, theta_star(0.05, &priors, 100));
    }

    #[test]
    fn inverse_mapping_consistent() {
        let priors = [0.555, 0.445];
        let n = 690;
        let s = theta_star(0.06, &priors, n);
        let implied = ig_threshold_of(s, &priors, n);
        assert!(implied <= 0.06 + 1e-9);
    }

    #[test]
    fn empty_database_safe() {
        assert_eq!(theta_star(0.1, &[1.0], 0), 1);
        assert_eq!(MinSupStrategy::Relative(0.5).resolve(0, &[1.0]), 1);
    }
}
